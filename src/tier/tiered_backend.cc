#include "src/tier/tiered_backend.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/logging.h"

namespace mrm {
namespace tier {

using workload::Stream;

namespace {

Status CheckTierIndex(const char* field, int index, int tier_count) {
  if (index < 0 || index >= tier_count) {
    return Error(std::string(field) + " = " + std::to_string(index) +
                 " out of range for " + std::to_string(tier_count) + " tier(s)");
  }
  return Status::Ok();
}

}  // namespace

Status Placement::Validate(int tier_count) const {
  if (tier_count <= 0) {
    return Error("placement requires at least one tier");
  }
  if (Status s = CheckTierIndex("weights_tier", weights_tier, tier_count); !s.ok()) {
    return s;
  }
  if (Status s = CheckTierIndex("kv_hot_tier", kv_hot_tier, tier_count); !s.ok()) {
    return s;
  }
  if (Status s = CheckTierIndex("kv_cold_tier", kv_cold_tier, tier_count); !s.ok()) {
    return s;
  }
  if (Status s = CheckTierIndex("activations_tier", activations_tier, tier_count); !s.ok()) {
    return s;
  }
  if (!(kv_hot_fraction >= 0.0 && kv_hot_fraction <= 1.0)) {
    // The negated form also rejects NaN.
    return Error("kv_hot_fraction must be in [0, 1], got " +
                 std::to_string(kv_hot_fraction));
  }
  return Status::Ok();
}

Status TieredBackendOptions::Validate(int tier_count) const {
  if (scrub_tier < -1 || scrub_tier >= tier_count) {
    return Error("scrub_tier = " + std::to_string(scrub_tier) +
                 " must be -1 (off) or a tier index below " + std::to_string(tier_count));
  }
  // The deprecated alias is only read when a scrub tier is configured, so a
  // garbage value with scrubbing off stays ignorable (historical contract).
  // The negated comparisons also reject NaN.
  if (scrub_tier >= 0 && (!(scrub_safe_age_s >= 0.0) || !std::isfinite(scrub_safe_age_s))) {
    return Error("scrub_safe_age_s must be non-negative and finite, got " +
                 std::to_string(scrub_safe_age_s));
  }
  if (!(kv_scrub_age_s >= 0.0) || !std::isfinite(kv_scrub_age_s)) {
    return Error("kv_scrub_age_s must be non-negative and finite, got " +
                 std::to_string(kv_scrub_age_s));
  }
  if (!(weights_scrub_age_s >= 0.0) || !std::isfinite(weights_scrub_age_s)) {
    return Error("weights_scrub_age_s must be non-negative and finite, got " +
                 std::to_string(weights_scrub_age_s));
  }
  if (scrub_tier >= 0 && !(EffectiveKvScrubAge() > 0.0)) {
    return Error("a configured scrub tier requires a positive KV scrub age "
                 "(kv_scrub_age_s or the scrub_safe_age_s alias), got " +
                 std::to_string(EffectiveKvScrubAge()));
  }
  return Status::Ok();
}

Status TieredBackendOptions::Validate(const Placement& placement, int tier_count) const {
  if (Status s = Validate(tier_count); !s.ok()) {
    return s;
  }
  if (kv_scrub_age_s > 0.0 && scrub_tier < 0) {
    return Error("kv_scrub_age_s is set but no scrub tier is configured");
  }
  if (kv_scrub_age_s > 0.0 && placement.kv_hot_tier != scrub_tier &&
      placement.kv_cold_tier != scrub_tier) {
    return Error("kv_scrub_age_s is set but no KV tier is placed on scrub_tier " +
                 std::to_string(scrub_tier));
  }
  if (weights_scrub_age_s > 0.0 && scrub_tier < 0) {
    return Error("weights_scrub_age_s is set but no scrub tier is configured");
  }
  if (weights_scrub_age_s > 0.0 && placement.weights_tier != scrub_tier) {
    return Error("weights_scrub_age_s is set but weights_tier " +
                 std::to_string(placement.weights_tier) + " is not scrub_tier " +
                 std::to_string(scrub_tier));
  }
  return Status::Ok();
}

TieredBackend::TieredBackend(std::vector<workload::TierSpec> tiers, Placement placement,
                             std::uint64_t weight_bytes, TieredBackendOptions options)
    : tiers_(std::move(tiers)),
      placement_(placement),
      weight_bytes_(weight_bytes),
      options_(options) {
  MRM_CHECK(!tiers_.empty());
  const int tier_count = static_cast<int>(tiers_.size());
  const Status placement_ok = placement_.Validate(tier_count);
  MRM_CHECK(placement_ok.ok()) << placement_ok.message();
  const Status options_ok = options_.Validate(placement_, tier_count);
  MRM_CHECK(options_ok.ok()) << options_ok.message();
  MRM_CHECK(tiers_[static_cast<std::size_t>(placement_.weights_tier)].capacity_bytes == 0 ||
            tiers_[static_cast<std::size_t>(placement_.weights_tier)].capacity_bytes >=
                weight_bytes_)
      << "weights do not fit their tier";
  if (options_.weights_scrub_age_s > 0.0 && placement_.weights_tier == options_.scrub_tier) {
    resident_weights_ = weight_bytes_;
  }
  busy_s_.assign(tiers_.size(), 0.0);
  dynamic_j_.assign(tiers_.size(), 0.0);
}

std::string TieredBackend::name() const {
  std::string name = "tiered(";
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    name += tiers_[i].name;
    if (i + 1 < tiers_.size()) {
      name += "+";
    }
  }
  return name + ")";
}

void TieredBackend::Charge(int tier, bool is_write, std::uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  const workload::TierSpec& spec = tiers_[static_cast<std::size_t>(tier)];
  const double bw = is_write ? spec.write_bw_bytes_per_s : spec.read_bw_bytes_per_s;
  busy_s_[static_cast<std::size_t>(tier)] += static_cast<double>(bytes) / bw;
  const double pj_per_bit = is_write ? spec.write_pj_per_bit : spec.read_pj_per_bit;
  const double joules = static_cast<double>(bytes) * 8.0 * pj_per_bit * 1e-12;
  dynamic_j_[static_cast<std::size_t>(tier)] += joules;
  step_dynamic_j_ += joules;
}

void TieredBackend::RouteRead(Stream stream, std::uint64_t bytes) {
  switch (stream) {
    case Stream::kWeights:
      Charge(placement_.weights_tier, false, bytes);
      break;
    case Stream::kKvCache: {
      const auto hot = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(bytes) * placement_.kv_hot_fraction));
      Charge(placement_.kv_hot_tier, false, hot);
      Charge(placement_.kv_cold_tier, false, bytes - hot);
      break;
    }
    case Stream::kActivations:
    case Stream::kNone:
      Charge(placement_.activations_tier, false, bytes);
      break;
  }
}

void TieredBackend::RouteWrite(Stream stream, std::uint64_t bytes) {
  switch (stream) {
    case Stream::kWeights:
      Charge(placement_.weights_tier, true, bytes);
      break;
    case Stream::kKvCache: {
      const auto hot = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(bytes) * placement_.kv_hot_fraction));
      Charge(placement_.kv_hot_tier, true, hot);
      const std::uint64_t cold = bytes - hot;
      Charge(placement_.kv_cold_tier, true, cold);
      if (placement_.kv_cold_tier == options_.scrub_tier) {
        resident_kv_cold_ += cold;
      }
      if (placement_.kv_hot_tier == options_.scrub_tier) {
        resident_kv_cold_ += hot;
      }
      break;
    }
    case Stream::kActivations:
    case Stream::kNone:
      Charge(placement_.activations_tier, true, bytes);
      break;
  }
}

workload::StepCost TieredBackend::SubmitStep(
    const std::vector<workload::Transfer>& transfers) {
  std::fill(busy_s_.begin(), busy_s_.end(), 0.0);
  step_dynamic_j_ = 0.0;
  for (const workload::Transfer& transfer : transfers) {
    if (transfer.is_write) {
      RouteWrite(transfer.stream, transfer.bytes);
    } else {
      RouteRead(transfer.stream, transfer.bytes);
    }
  }
  workload::StepCost cost;
  for (const double busy : busy_s_) {
    cost.seconds = std::max(cost.seconds, busy);
  }
  cost.energy_j = step_dynamic_j_;
  return cost;
}

void TieredBackend::OnKvFreed(std::uint64_t bytes) {
  if (options_.scrub_tier < 0) {
    return;
  }
  double fraction = 0.0;
  if (placement_.kv_cold_tier == options_.scrub_tier) {
    fraction += 1.0 - placement_.kv_hot_fraction;
  }
  if (placement_.kv_hot_tier == options_.scrub_tier) {
    fraction += placement_.kv_hot_fraction;
  }
  const auto freed = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes) * fraction));
  resident_kv_cold_ -= std::min(resident_kv_cold_, freed);
}

void TieredBackend::AccountTime(double seconds) {
  for (const auto& spec : tiers_) {
    static_j_ += spec.static_power_w * seconds;
  }
  // Scrub model: resident bytes on the scrub tier are rewritten once per
  // their stream's safe age; charge read-back + write energy.
  if (options_.scrub_tier < 0) {
    return;
  }
  const workload::TierSpec& spec = tiers_[static_cast<std::size_t>(options_.scrub_tier)];
  const double pj_per_bit = spec.write_pj_per_bit + spec.read_pj_per_bit;
  const double kv_age = options_.EffectiveKvScrubAge();
  if (kv_age > 0.0 && resident_kv_cold_ > 0) {
    const double bytes = static_cast<double>(resident_kv_cold_) * seconds / kv_age;
    scrub_j_ += bytes * 8.0 * pj_per_bit * 1e-12;
    scrub_bytes_ += static_cast<std::uint64_t>(bytes);
  }
  if (options_.weights_scrub_age_s > 0.0 && resident_weights_ > 0) {
    const double bytes =
        static_cast<double>(resident_weights_) * seconds / options_.weights_scrub_age_s;
    scrub_j_ += bytes * 8.0 * pj_per_bit * 1e-12;
    scrub_bytes_ += static_cast<std::uint64_t>(bytes);
  }
}

double TieredBackend::EnergyJoules() const {
  double total = static_j_ + scrub_j_;
  for (const double j : dynamic_j_) {
    total += j;
  }
  return total;
}

std::uint64_t TieredBackend::KvCapacityBytes() const {
  auto available = [this](int index) -> double {
    const workload::TierSpec& spec = tiers_[static_cast<std::size_t>(index)];
    if (spec.capacity_bytes == 0) {
      return 1e30;  // unlimited
    }
    double capacity = static_cast<double>(spec.capacity_bytes);
    if (index == placement_.weights_tier) {
      capacity -= static_cast<double>(weight_bytes_);
    }
    return std::max(capacity, 0.0);
  };
  const double f = placement_.kv_hot_fraction;
  double limit = 1e30;
  if (f > 0.0) {
    limit = std::min(limit, available(placement_.kv_hot_tier) / f);
  }
  if (f < 1.0) {
    limit = std::min(limit, available(placement_.kv_cold_tier) / (1.0 - f));
  }
  if (limit >= 1e30) {
    return 0;  // unlimited
  }
  return static_cast<std::uint64_t>(limit);
}

}  // namespace tier
}  // namespace mrm
