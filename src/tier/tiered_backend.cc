#include "src/tier/tiered_backend.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace mrm {
namespace tier {

using workload::Stream;

TieredBackend::TieredBackend(std::vector<workload::TierSpec> tiers, Placement placement,
                             std::uint64_t weight_bytes, TieredBackendOptions options)
    : tiers_(std::move(tiers)),
      placement_(placement),
      weight_bytes_(weight_bytes),
      options_(options) {
  MRM_CHECK(!tiers_.empty());
  auto check_tier = [this](int index) {
    MRM_CHECK(index >= 0 && index < static_cast<int>(tiers_.size()))
        << "placement references tier " << index;
  };
  check_tier(placement_.weights_tier);
  check_tier(placement_.kv_hot_tier);
  check_tier(placement_.kv_cold_tier);
  check_tier(placement_.activations_tier);
  MRM_CHECK(placement_.kv_hot_fraction >= 0.0 && placement_.kv_hot_fraction <= 1.0);
  MRM_CHECK(tiers_[static_cast<std::size_t>(placement_.weights_tier)].capacity_bytes == 0 ||
            tiers_[static_cast<std::size_t>(placement_.weights_tier)].capacity_bytes >=
                weight_bytes_)
      << "weights do not fit their tier";
  busy_s_.assign(tiers_.size(), 0.0);
  dynamic_j_.assign(tiers_.size(), 0.0);
}

std::string TieredBackend::name() const {
  std::string name = "tiered(";
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    name += tiers_[i].name;
    if (i + 1 < tiers_.size()) {
      name += "+";
    }
  }
  return name + ")";
}

void TieredBackend::BeginStep() { std::fill(busy_s_.begin(), busy_s_.end(), 0.0); }

void TieredBackend::Charge(int tier, bool is_write, std::uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  const workload::TierSpec& spec = tiers_[static_cast<std::size_t>(tier)];
  const double bw = is_write ? spec.write_bw_bytes_per_s : spec.read_bw_bytes_per_s;
  busy_s_[static_cast<std::size_t>(tier)] += static_cast<double>(bytes) / bw;
  const double pj_per_bit = is_write ? spec.write_pj_per_bit : spec.read_pj_per_bit;
  dynamic_j_[static_cast<std::size_t>(tier)] +=
      static_cast<double>(bytes) * 8.0 * pj_per_bit * 1e-12;
}

void TieredBackend::Read(Stream stream, std::uint64_t bytes) {
  switch (stream) {
    case Stream::kWeights:
      Charge(placement_.weights_tier, false, bytes);
      break;
    case Stream::kKvCache: {
      const auto hot = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(bytes) * placement_.kv_hot_fraction));
      Charge(placement_.kv_hot_tier, false, hot);
      Charge(placement_.kv_cold_tier, false, bytes - hot);
      break;
    }
    case Stream::kActivations:
    case Stream::kNone:
      Charge(placement_.activations_tier, false, bytes);
      break;
  }
}

void TieredBackend::Write(Stream stream, std::uint64_t bytes) {
  switch (stream) {
    case Stream::kWeights:
      Charge(placement_.weights_tier, true, bytes);
      break;
    case Stream::kKvCache: {
      const auto hot = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(bytes) * placement_.kv_hot_fraction));
      Charge(placement_.kv_hot_tier, true, hot);
      const std::uint64_t cold = bytes - hot;
      Charge(placement_.kv_cold_tier, true, cold);
      if (placement_.kv_cold_tier == options_.scrub_tier) {
        resident_kv_cold_ += cold;
      }
      if (placement_.kv_hot_tier == options_.scrub_tier) {
        resident_kv_cold_ += hot;
      }
      break;
    }
    case Stream::kActivations:
    case Stream::kNone:
      Charge(placement_.activations_tier, true, bytes);
      break;
  }
}

void TieredBackend::OnKvFreed(std::uint64_t bytes) {
  if (options_.scrub_tier < 0) {
    return;
  }
  double fraction = 0.0;
  if (placement_.kv_cold_tier == options_.scrub_tier) {
    fraction += 1.0 - placement_.kv_hot_fraction;
  }
  if (placement_.kv_hot_tier == options_.scrub_tier) {
    fraction += placement_.kv_hot_fraction;
  }
  const auto freed = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes) * fraction));
  resident_kv_cold_ -= std::min(resident_kv_cold_, freed);
}

double TieredBackend::EndStep() {
  double step = 0.0;
  for (const double busy : busy_s_) {
    step = std::max(step, busy);
  }
  return step;
}

void TieredBackend::AccountTime(double seconds) {
  for (const auto& spec : tiers_) {
    static_j_ += spec.static_power_w * seconds;
  }
  // Scrub model: resident bytes on the scrub tier are rewritten once per
  // safe age; charge write energy (read-back is cheap and overlapped).
  if (options_.scrub_tier >= 0 && options_.scrub_safe_age_s > 0.0 && resident_kv_cold_ > 0) {
    const double bytes = static_cast<double>(resident_kv_cold_) * seconds /
                         options_.scrub_safe_age_s;
    const workload::TierSpec& spec = tiers_[static_cast<std::size_t>(options_.scrub_tier)];
    scrub_j_ += bytes * 8.0 * (spec.write_pj_per_bit + spec.read_pj_per_bit) * 1e-12;
    scrub_bytes_ += static_cast<std::uint64_t>(bytes);
  }
}

double TieredBackend::EnergyJoules() const {
  double total = static_j_ + scrub_j_;
  for (const double j : dynamic_j_) {
    total += j;
  }
  return total;
}

std::uint64_t TieredBackend::KvCapacityBytes() const {
  auto available = [this](int index) -> double {
    const workload::TierSpec& spec = tiers_[static_cast<std::size_t>(index)];
    if (spec.capacity_bytes == 0) {
      return 1e30;  // unlimited
    }
    double capacity = static_cast<double>(spec.capacity_bytes);
    if (index == placement_.weights_tier) {
      capacity -= static_cast<double>(weight_bytes_);
    }
    return std::max(capacity, 0.0);
  };
  const double f = placement_.kv_hot_fraction;
  double limit = 1e30;
  if (f > 0.0) {
    limit = std::min(limit, available(placement_.kv_hot_tier) / f);
  }
  if (f < 1.0) {
    limit = std::min(limit, available(placement_.kv_cold_tier) / (1.0 - f));
  }
  if (limit >= 1e30) {
    return 0;  // unlimited
  }
  return static_cast<std::uint64_t>(limit);
}

}  // namespace tier
}  // namespace mrm
