// Multi-tier memory backend with retention-aware placement (paper §4).
//
// Routes each stream to a tier per the placement policy; the KV cache can be
// split between a hot tier (recent vectors, HBM) and a cold tier (bulk,
// MRM/LPDDR). Tiers transfer in parallel — the step's memory time is the
// busiest tier's time, which is what makes offloading bandwidth-additive.
//
// For MRM tiers the backend also models the control plane's scrub traffic:
// bytes resident on the scrub tier must be rewritten once per their stream's
// scrub safe age, costing write energy and MRM write bandwidth. Safe ages are
// per stream (KV and weights age at different programmed retentions, so their
// ECC-safe windows differ); the legacy single `scrub_safe_age_s` survives as
// a deprecated alias for the KV age.

#ifndef MRMSIM_SRC_TIER_TIERED_BACKEND_H_
#define MRMSIM_SRC_TIER_TIERED_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/workload/backend.h"

namespace mrm {
namespace tier {

struct Placement {
  int weights_tier = 0;
  int kv_hot_tier = 0;
  int kv_cold_tier = 0;
  // Fraction of KV-cache reads/writes served by the hot tier.
  double kv_hot_fraction = 1.0;
  int activations_tier = 0;

  // Cross-field validation against a system of `tier_count` tiers: every
  // tier index in range, kv_hot_fraction a real number in [0, 1].
  Status Validate(int tier_count) const;

  friend bool operator==(const Placement& a, const Placement& b) {
    return a.weights_tier == b.weights_tier && a.kv_hot_tier == b.kv_hot_tier &&
           a.kv_cold_tier == b.kv_cold_tier && a.kv_hot_fraction == b.kv_hot_fraction &&
           a.activations_tier == b.activations_tier;
  }
};

struct TieredBackendOptions {
  // Index of the tier whose data needs periodic scrubbing (-1 = none).
  int scrub_tier = -1;
  // Deprecated two-field form: single safe age for KV data on the scrub
  // tier. Still honored when kv_scrub_age_s is 0 so pre-policy scenarios and
  // snapshots keep their meaning; new code sets the per-stream ages below.
  double scrub_safe_age_s = 3600.0;
  // Per-stream scrub safe ages (seconds). KV bytes resident on the scrub
  // tier are rewritten once per kv_scrub_age_s (0 = inherit the deprecated
  // scrub_safe_age_s alias). Weights are written once and live forever, so
  // they scrub only when weights_scrub_age_s is set explicitly (> 0); the
  // alias never applies to them (matches the historical model, where only KV
  // paid scrub traffic). Activations are step-transient and never scrubbed.
  double kv_scrub_age_s = 0.0;
  double weights_scrub_age_s = 0.0;

  // Resolved KV age after alias substitution.
  double EffectiveKvScrubAge() const { return kv_scrub_age_s > 0.0 ? kv_scrub_age_s : scrub_safe_age_s; }

  // Field-local validation: scrub_tier is -1 or a valid tier index, the
  // per-stream ages non-negative finite, and a configured scrub tier
  // requires a positive finite effective KV age. The deprecated alias is
  // only checked when scrubbing is on (it is ignorable otherwise).
  Status Validate(int tier_count) const;
  // Full cross-field validation against the placement: a per-stream age is
  // only meaningful when that stream actually lives on the scrub tier.
  // Errors name the offending rule. This is the overload the backend ctor
  // enforces.
  Status Validate(const Placement& placement, int tier_count) const;

  friend bool operator==(const TieredBackendOptions& a, const TieredBackendOptions& b) {
    return a.scrub_tier == b.scrub_tier && a.scrub_safe_age_s == b.scrub_safe_age_s &&
           a.kv_scrub_age_s == b.kv_scrub_age_s && a.weights_scrub_age_s == b.weights_scrub_age_s;
  }
};

class TieredBackend final : public workload::MemoryBackend {
 public:
  TieredBackend(std::vector<workload::TierSpec> tiers, Placement placement,
                std::uint64_t weight_bytes, TieredBackendOptions options = {});

  using workload::MemoryBackend::SubmitStep;

  std::string name() const override;
  workload::StepCost SubmitStep(const std::vector<workload::Transfer>& transfers) override;
  void AccountTime(double seconds) override;
  double EnergyJoules() const override;
  std::uint64_t KvCapacityBytes() const override;

  // Per-tier cumulative dynamic energy (index-aligned with the ctor vector).
  const std::vector<double>& tier_dynamic_joules() const { return dynamic_j_; }
  double static_joules() const { return static_j_; }
  double scrub_joules() const { return scrub_j_; }
  std::uint64_t scrub_bytes() const { return scrub_bytes_; }
  std::uint64_t resident_scrub_kv_bytes() const { return resident_kv_cold_; }
  std::uint64_t resident_scrub_weight_bytes() const { return resident_weights_; }
  const std::vector<workload::TierSpec>& tiers() const { return tiers_; }

  // The engine reports KV frees so the scrub model tracks residency.
  void OnKvFreed(std::uint64_t bytes) override;

 private:
  void Charge(int tier, bool is_write, std::uint64_t bytes);
  void RouteRead(workload::Stream stream, std::uint64_t bytes);
  void RouteWrite(workload::Stream stream, std::uint64_t bytes);

  std::vector<workload::TierSpec> tiers_;
  Placement placement_;
  std::uint64_t weight_bytes_;
  TieredBackendOptions options_;

  std::vector<double> busy_s_;     // current step, per tier
  std::vector<double> dynamic_j_;  // cumulative, per tier
  double step_dynamic_j_ = 0.0;    // current step's dynamic-energy delta
  double static_j_ = 0.0;
  double scrub_j_ = 0.0;
  std::uint64_t scrub_bytes_ = 0;
  std::uint64_t resident_kv_cold_ = 0;   // KV bytes on the scrub tier
  std::uint64_t resident_weights_ = 0;   // weight bytes on the scrub tier
};

}  // namespace tier
}  // namespace mrm

#endif  // MRMSIM_SRC_TIER_TIERED_BACKEND_H_
