// Multi-tier memory backend with retention-aware placement (paper §4).
//
// Routes each stream to a tier per the placement policy; the KV cache can be
// split between a hot tier (recent vectors, HBM) and a cold tier (bulk,
// MRM/LPDDR). Tiers transfer in parallel — the step's memory time is the
// busiest tier's time, which is what makes offloading bandwidth-additive.
//
// For MRM tiers the backend also models the control plane's scrub traffic:
// resident KV bytes must be rewritten every `scrub_safe_age_s`, costing
// write energy and MRM write bandwidth.

#ifndef MRMSIM_SRC_TIER_TIERED_BACKEND_H_
#define MRMSIM_SRC_TIER_TIERED_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/workload/backend.h"

namespace mrm {
namespace tier {

struct Placement {
  int weights_tier = 0;
  int kv_hot_tier = 0;
  int kv_cold_tier = 0;
  // Fraction of KV-cache reads/writes served by the hot tier.
  double kv_hot_fraction = 1.0;
  int activations_tier = 0;

  // Cross-field validation against a system of `tier_count` tiers: every
  // tier index in range, kv_hot_fraction a real number in [0, 1].
  Status Validate(int tier_count) const;
};

struct TieredBackendOptions {
  // Index of the tier whose data needs periodic scrubbing (-1 = none).
  int scrub_tier = -1;
  // Data on the scrub tier is rewritten every this many seconds.
  double scrub_safe_age_s = 3600.0;

  // Cross-field validation: scrub_tier is -1 or a valid tier index, and a
  // configured scrub tier requires a positive finite safe age.
  Status Validate(int tier_count) const;
};

class TieredBackend final : public workload::MemoryBackend {
 public:
  TieredBackend(std::vector<workload::TierSpec> tiers, Placement placement,
                std::uint64_t weight_bytes, TieredBackendOptions options = {});

  using workload::MemoryBackend::SubmitStep;

  std::string name() const override;
  workload::StepCost SubmitStep(const std::vector<workload::Transfer>& transfers) override;
  void AccountTime(double seconds) override;
  double EnergyJoules() const override;
  std::uint64_t KvCapacityBytes() const override;

  // Per-tier cumulative dynamic energy (index-aligned with the ctor vector).
  const std::vector<double>& tier_dynamic_joules() const { return dynamic_j_; }
  double static_joules() const { return static_j_; }
  double scrub_joules() const { return scrub_j_; }
  std::uint64_t scrub_bytes() const { return scrub_bytes_; }
  std::uint64_t resident_scrub_kv_bytes() const { return resident_kv_cold_; }
  const std::vector<workload::TierSpec>& tiers() const { return tiers_; }

  // The engine reports KV frees so the scrub model tracks residency.
  void OnKvFreed(std::uint64_t bytes) override;

 private:
  void Charge(int tier, bool is_write, std::uint64_t bytes);
  void RouteRead(workload::Stream stream, std::uint64_t bytes);
  void RouteWrite(workload::Stream stream, std::uint64_t bytes);

  std::vector<workload::TierSpec> tiers_;
  Placement placement_;
  std::uint64_t weight_bytes_;
  TieredBackendOptions options_;

  std::vector<double> busy_s_;     // current step, per tier
  std::vector<double> dynamic_j_;  // cumulative, per tier
  double step_dynamic_j_ = 0.0;    // current step's dynamic-energy delta
  double static_j_ = 0.0;
  double scrub_j_ = 0.0;
  std::uint64_t scrub_bytes_ = 0;
  std::uint64_t resident_kv_cold_ = 0;  // bytes on the scrub tier
};

}  // namespace tier
}  // namespace mrm

#endif  // MRMSIM_SRC_TIER_TIERED_BACKEND_H_
