#include "src/workload/backend.h"

#include "src/common/logging.h"

namespace mrm {
namespace workload {

AnalyticBackend::AnalyticBackend(TierSpec spec, std::uint64_t weight_bytes)
    : spec_(std::move(spec)), weight_bytes_(weight_bytes) {
  MRM_CHECK(spec_.read_bw_bytes_per_s > 0.0 && spec_.write_bw_bytes_per_s > 0.0);
}

StepCost AnalyticBackend::SubmitStep(const std::vector<Transfer>& transfers) {
  StepCost cost;
  for (const Transfer& transfer : transfers) {
    const double bytes = static_cast<double>(transfer.bytes);
    const double bw =
        transfer.is_write ? spec_.write_bw_bytes_per_s : spec_.read_bw_bytes_per_s;
    const double pj_per_bit =
        transfer.is_write ? spec_.write_pj_per_bit : spec_.read_pj_per_bit;
    cost.seconds += bytes / bw;
    cost.energy_j += bytes * 8.0 * pj_per_bit * 1e-12;
  }
  dynamic_j_ += cost.energy_j;
  return cost;
}

void AnalyticBackend::AccountTime(double seconds) {
  static_j_ += spec_.static_power_w * seconds;
}

std::uint64_t AnalyticBackend::KvCapacityBytes() const {
  if (spec_.capacity_bytes == 0) {
    return 0;  // unlimited
  }
  return spec_.capacity_bytes > weight_bytes_ ? spec_.capacity_bytes - weight_bytes_ : 1;
}

}  // namespace workload
}  // namespace mrm
