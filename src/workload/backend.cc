#include "src/workload/backend.h"

#include "src/common/logging.h"

namespace mrm {
namespace workload {

AnalyticBackend::AnalyticBackend(TierSpec spec, std::uint64_t weight_bytes)
    : spec_(std::move(spec)), weight_bytes_(weight_bytes) {
  MRM_CHECK(spec_.read_bw_bytes_per_s > 0.0 && spec_.write_bw_bytes_per_s > 0.0);
}

void AnalyticBackend::Read(Stream /*stream*/, std::uint64_t bytes) {
  dynamic_j_ += static_cast<double>(bytes) * 8.0 * spec_.read_pj_per_bit * 1e-12;
  step_s_ += static_cast<double>(bytes) / spec_.read_bw_bytes_per_s;
}

void AnalyticBackend::Write(Stream /*stream*/, std::uint64_t bytes) {
  dynamic_j_ += static_cast<double>(bytes) * 8.0 * spec_.write_pj_per_bit * 1e-12;
  step_s_ += static_cast<double>(bytes) / spec_.write_bw_bytes_per_s;
}

void AnalyticBackend::AccountTime(double seconds) {
  static_j_ += spec_.static_power_w * seconds;
}

std::uint64_t AnalyticBackend::KvCapacityBytes() const {
  if (spec_.capacity_bytes == 0) {
    return 0;  // unlimited
  }
  return spec_.capacity_bytes > weight_bytes_ ? spec_.capacity_bytes - weight_bytes_ : 1;
}

}  // namespace workload
}  // namespace mrm
