// Memory backends: where the inference engine's bytes go.
//
// A MemoryBackend answers "how long does this step's traffic take" and keeps
// the energy ledger. The contract is a transfer batch: the engine collects
// one step's per-stream transfers into a StepBatch and submits them in one
// call; the backend decides how they overlap (a single device serializes on
// its bus; independent tiers run in parallel; the cycle-level backend
// replays them through the sharded simulator) and returns the step's memory
// time plus the dynamic-energy delta it charged.
//
// Implementations: AnalyticBackend models a single tier from bandwidth /
// energy constants (derived from the cycle-level device presets via
// tier::TierSpecFromDevice); tier::TieredBackend routes streams across
// several tiers per placement policy; driver::SimBackend lowers the batch
// onto mem::MemorySystem / mrm::ControlPlane and measures it.

#ifndef MRMSIM_SRC_WORKLOAD_BACKEND_H_
#define MRMSIM_SRC_WORKLOAD_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workload/trace.h"

namespace mrm {
namespace workload {

// One memory tier reduced to its workload-visible parameters.
struct TierSpec {
  std::string name;
  std::uint64_t capacity_bytes = 0;
  double read_bw_bytes_per_s = 0.0;
  double write_bw_bytes_per_s = 0.0;
  double read_pj_per_bit = 0.0;   // array + interface
  double write_pj_per_bit = 0.0;
  double static_power_w = 0.0;    // background incl. refresh when applicable
  double cost_per_gib = 0.0;      // relative $ for the TCO model
};

// One logical transfer within a step.
struct Transfer {
  Stream stream = Stream::kNone;
  bool is_write = false;
  std::uint64_t bytes = 0;
};

// What one submitted step cost: memory time under the backend's overlap
// model plus the dynamic energy charged for the batch (static/background
// energy is charged separately via AccountTime, which sees the roofline
// step time rather than the memory time alone).
struct StepCost {
  double seconds = 0.0;
  double energy_j = 0.0;
};

// Builder the engine reuses across steps; order within the batch is
// preserved (the cycle-level backend issues transfers per stream in batch
// order).
class StepBatch {
 public:
  void Read(Stream stream, std::uint64_t bytes) {
    transfers_.push_back(Transfer{stream, false, bytes});
  }
  void Write(Stream stream, std::uint64_t bytes) {
    transfers_.push_back(Transfer{stream, true, bytes});
  }
  void Clear() { transfers_.clear(); }
  bool empty() const { return transfers_.empty(); }
  const std::vector<Transfer>& transfers() const { return transfers_; }

 private:
  std::vector<Transfer> transfers_;
};

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  virtual std::string name() const = 0;

  // Executes one step's transfer batch and returns its memory time and
  // dynamic-energy delta. The batch may be empty (cost zero).
  virtual StepCost SubmitStep(const std::vector<Transfer>& transfers) = 0;

  // Charges static/background power for `seconds` of wall time.
  virtual void AccountTime(double seconds) = 0;

  // Cumulative energy in joules (dynamic + static so far).
  virtual double EnergyJoules() const = 0;

  // Capacity available for the KV cache after fixed allocations; the engine
  // uses it for admission control. 0 = unlimited.
  virtual std::uint64_t KvCapacityBytes() const = 0;

  // The engine reports KV-cache frees (request completion) so backends that
  // track residency (e.g. for scrub modelling) stay accurate. Default no-op.
  virtual void OnKvFreed(std::uint64_t bytes) { (void)bytes; }

  // Convenience forwarder for callers holding a StepBatch.
  StepCost SubmitStep(const StepBatch& batch) { return SubmitStep(batch.transfers()); }
};

// Single-tier analytic backend: everything lives in one memory, all
// transfers serialize on its bus.
class AnalyticBackend final : public MemoryBackend {
 public:
  // `weight_bytes` is carved out of capacity; the rest serves KV and
  // activations.
  AnalyticBackend(TierSpec spec, std::uint64_t weight_bytes);

  using MemoryBackend::SubmitStep;

  std::string name() const override { return spec_.name; }
  StepCost SubmitStep(const std::vector<Transfer>& transfers) override;
  void AccountTime(double seconds) override;
  double EnergyJoules() const override { return dynamic_j_ + static_j_; }
  std::uint64_t KvCapacityBytes() const override;

  const TierSpec& spec() const { return spec_; }
  double dynamic_joules() const { return dynamic_j_; }
  double static_joules() const { return static_j_; }

 private:
  TierSpec spec_;
  std::uint64_t weight_bytes_;
  double dynamic_j_ = 0.0;
  double static_j_ = 0.0;
};

}  // namespace workload
}  // namespace mrm

#endif  // MRMSIM_SRC_WORKLOAD_BACKEND_H_
