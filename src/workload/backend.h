// Memory backends: where the inference engine's bytes go.
//
// A MemoryBackend answers "how long does this step's traffic take" and keeps
// the energy ledger. Traffic is issued between BeginStep()/EndStep(); the
// backend decides how transfers overlap (a single device serializes on its
// bus; independent tiers run in parallel). AnalyticBackend models a single
// tier from bandwidth/energy constants (derived from the cycle-level device
// presets via tier::TierSpecFromDevice); tier::TieredBackend routes streams
// across several tiers per placement policy.

#ifndef MRMSIM_SRC_WORKLOAD_BACKEND_H_
#define MRMSIM_SRC_WORKLOAD_BACKEND_H_

#include <cstdint>
#include <string>

#include "src/workload/trace.h"

namespace mrm {
namespace workload {

// One memory tier reduced to its workload-visible parameters.
struct TierSpec {
  std::string name;
  std::uint64_t capacity_bytes = 0;
  double read_bw_bytes_per_s = 0.0;
  double write_bw_bytes_per_s = 0.0;
  double read_pj_per_bit = 0.0;   // array + interface
  double write_pj_per_bit = 0.0;
  double static_power_w = 0.0;    // background incl. refresh when applicable
  double cost_per_gib = 0.0;      // relative $ for the TCO model
};

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  virtual std::string name() const = 0;

  // Starts a new engine step; transfer time accumulates until EndStep.
  virtual void BeginStep() = 0;

  // Issues traffic for the current step and accumulates dynamic energy.
  virtual void Read(Stream stream, std::uint64_t bytes) = 0;
  virtual void Write(Stream stream, std::uint64_t bytes) = 0;

  // Memory time of the step under the backend's overlap model.
  virtual double EndStep() = 0;

  // Charges static/background power for `seconds` of wall time.
  virtual void AccountTime(double seconds) = 0;

  // Cumulative energy in joules (dynamic + static so far).
  virtual double EnergyJoules() const = 0;

  // Capacity available for the KV cache after fixed allocations; the engine
  // uses it for admission control. 0 = unlimited.
  virtual std::uint64_t KvCapacityBytes() const = 0;

  // The engine reports KV-cache frees (request completion) so backends that
  // track residency (e.g. for scrub modelling) stay accurate. Default no-op.
  virtual void OnKvFreed(std::uint64_t bytes) { (void)bytes; }
};

// Single-tier analytic backend: everything lives in one memory, all
// transfers serialize on its bus.
class AnalyticBackend final : public MemoryBackend {
 public:
  // `weight_bytes` is carved out of capacity; the rest serves KV and
  // activations.
  AnalyticBackend(TierSpec spec, std::uint64_t weight_bytes);

  std::string name() const override { return spec_.name; }
  void BeginStep() override { step_s_ = 0.0; }
  void Read(Stream stream, std::uint64_t bytes) override;
  void Write(Stream stream, std::uint64_t bytes) override;
  double EndStep() override { return step_s_; }
  void AccountTime(double seconds) override;
  double EnergyJoules() const override { return dynamic_j_ + static_j_; }
  std::uint64_t KvCapacityBytes() const override;

  const TierSpec& spec() const { return spec_; }
  double dynamic_joules() const { return dynamic_j_; }
  double static_joules() const { return static_j_; }

 private:
  TierSpec spec_;
  std::uint64_t weight_bytes_;
  double step_s_ = 0.0;
  double dynamic_j_ = 0.0;
  double static_j_ = 0.0;
};

}  // namespace workload
}  // namespace mrm

#endif  // MRMSIM_SRC_WORKLOAD_BACKEND_H_
