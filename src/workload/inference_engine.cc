#include "src/workload/inference_engine.h"

#include <algorithm>

#include "src/common/logging.h"

namespace mrm {
namespace workload {

InferenceEngine::InferenceEngine(EngineConfig config, MemoryBackend* backend, TraceSink* trace)
    : config_(std::move(config)), backend_(backend), trace_(trace) {
  const Status valid = config_.model.Validate();
  MRM_CHECK(valid.ok()) << valid.message();
  MRM_CHECK(backend_ != nullptr);
  MRM_CHECK(config_.max_batch > 0);
  MRM_CHECK(config_.compute_tflops > 0.0);
  MRM_CHECK(config_.kv_compression_ratio > 0.0 && config_.kv_compression_ratio <= 1.0);
  MRM_CHECK(config_.kv_codec_flops_per_byte >= 0.0);
}

EngineSummary InferenceEngine::Run(std::vector<InferenceRequest> requests) {
  std::sort(requests.begin(), requests.end(),
            [](const InferenceRequest& a, const InferenceRequest& b) {
              return a.arrival_s < b.arrival_s;
            });
  std::deque<InferenceRequest> pending(requests.begin(), requests.end());
  std::vector<Active> active;

  EngineSummary summary;
  const FoundationModelConfig& model = config_.model;
  const std::uint64_t weight_bytes = model.weight_bytes();
  const std::uint64_t kv_per_token = model.kv_bytes_per_token();
  const double compute_per_token_s =
      2.0 * static_cast<double>(model.parameters) / (config_.compute_tflops * 1e12);
  const std::uint64_t kv_capacity =
      config_.kv_capacity_bytes != 0 ? config_.kv_capacity_bytes : backend_->KvCapacityBytes();
  // Physical bytes per logical KV byte, and codec compute per logical byte.
  const double kv_ratio = config_.kv_compression_ratio;
  const double codec_s_per_byte =
      config_.kv_codec_flops_per_byte / (config_.compute_tflops * 1e12);
  auto compressed = [kv_ratio](std::uint64_t logical) {
    return static_cast<std::uint64_t>(static_cast<double>(logical) * kv_ratio + 0.5);
  };

  double t = 0.0;
  StepBatch step_batch;  // reused across steps; one SubmitStep per step
  std::uint64_t reserved_kv = 0;
  std::uint64_t decode_steps = 0;
  double batch_accum = 0.0;
  const double energy_at_start = backend_->EnergyJoules();

  auto record = [&](Stream stream, std::uint64_t key, bool is_write, std::uint64_t offset,
                    std::uint64_t length, std::uint64_t step) {
    if (trace_ != nullptr) {
      trace_->Record(TraceExtent{stream, key, is_write, offset, length, step});
    }
  };

  while (!pending.empty() || !active.empty()) {
    // Admission: arrivals in order, bounded by batch slots and KV capacity.
    while (!pending.empty() && pending.front().arrival_s <= t &&
           active.size() < static_cast<std::size_t>(config_.max_batch)) {
      const InferenceRequest& request = pending.front();
      const std::uint64_t need =
          kv_per_token *
          static_cast<std::uint64_t>(request.prompt_tokens + request.output_tokens);
      if (kv_capacity != 0 && reserved_kv + need > kv_capacity) {
        if (active.empty() && need > kv_capacity) {
          // Can never fit: reject rather than deadlock.
          ++summary.requests_rejected;
          pending.pop_front();
          continue;
        }
        break;
      }
      Active entry;
      entry.request = request;
      active.push_back(entry);
      reserved_kv += need;
      pending.pop_front();
    }

    if (active.empty()) {
      if (pending.empty()) {
        break;
      }
      t = std::max(t, pending.front().arrival_s);
      continue;
    }

    double comp_s = 0.0;
    const std::uint64_t step = summary.steps;
    step_batch.Clear();

    // Prefill-priority scheduling: while any admitted request still has
    // prompt tokens to ingest, run one prefill chunk (Sarathi-style chunking
    // without decode piggybacking).
    Active* prefill = nullptr;
    for (Active& entry : active) {
      if (entry.prefilled_tokens < entry.request.prompt_tokens) {
        prefill = &entry;
        break;
      }
    }

    if (prefill != nullptr) {
      const int chunk = std::min<int>(config_.prefill_chunk_tokens,
                                      prefill->request.prompt_tokens - prefill->prefilled_tokens);
      const std::uint64_t kv_write = kv_per_token * static_cast<std::uint64_t>(chunk);
      step_batch.Read(Stream::kWeights, weight_bytes);
      record(Stream::kWeights, 0, false, 0, weight_bytes, step);
      summary.weight_read_bytes += weight_bytes;

      step_batch.Write(Stream::kKvCache, compressed(kv_write));
      record(Stream::kKvCache, prefill->request.id, true, prefill->kv_bytes, kv_write, step);
      summary.kv_write_bytes += kv_write;
      summary.kv_moved_bytes += compressed(kv_write);
      comp_s += static_cast<double>(kv_write) * codec_s_per_byte;

      const std::uint64_t act = model.activation_bytes(1);
      step_batch.Write(Stream::kActivations, act);
      step_batch.Read(Stream::kActivations, act);
      record(Stream::kActivations, 0, true, 0, act, step);
      record(Stream::kActivations, 0, false, 0, act, step);
      summary.activation_read_bytes += act;
      summary.activation_write_bytes += act;

      comp_s += static_cast<double>(chunk) * compute_per_token_s;
      prefill->prefilled_tokens += chunk;
      prefill->kv_bytes += kv_write;
      summary.prefill_tokens += static_cast<std::uint64_t>(chunk);
    } else {
      // Decode step: the whole batch advances one token.
      const std::size_t batch = active.size();
      const std::uint64_t kv_read_before = summary.kv_read_bytes;
      ++decode_steps;
      batch_accum += static_cast<double>(batch);

      step_batch.Read(Stream::kWeights, weight_bytes);
      record(Stream::kWeights, 0, false, 0, weight_bytes, step);
      summary.weight_read_bytes += weight_bytes;

      for (Active& entry : active) {
        step_batch.Read(Stream::kKvCache, compressed(entry.kv_bytes));
        record(Stream::kKvCache, entry.request.id, false, 0, entry.kv_bytes, step);
        summary.kv_read_bytes += entry.kv_bytes;
        summary.kv_moved_bytes += compressed(entry.kv_bytes);
        comp_s += static_cast<double>(entry.kv_bytes) * codec_s_per_byte;

        step_batch.Write(Stream::kKvCache, compressed(kv_per_token));
        record(Stream::kKvCache, entry.request.id, true, entry.kv_bytes, kv_per_token, step);
        summary.kv_write_bytes += kv_per_token;
        summary.kv_moved_bytes += compressed(kv_per_token);
        comp_s += static_cast<double>(kv_per_token) * codec_s_per_byte;
        entry.kv_bytes += kv_per_token;
      }

      const std::uint64_t act = model.activation_bytes(static_cast<int>(batch));
      step_batch.Write(Stream::kActivations, act);
      step_batch.Read(Stream::kActivations, act);
      record(Stream::kActivations, 0, true, 0, act, step);
      record(Stream::kActivations, 0, false, 0, act, step);
      summary.activation_read_bytes += act;
      summary.activation_write_bytes += act;

      comp_s += static_cast<double>(batch) * compute_per_token_s;
      summary.decode_read_bytes +=
          weight_bytes + (summary.kv_read_bytes - kv_read_before) + act;
      summary.decode_write_bytes += kv_per_token * batch + act;
    }

    const double mem_s = backend_->SubmitStep(step_batch).seconds;
    const double step_time = std::max(mem_s, comp_s);
    summary.memory_seconds += mem_s;
    summary.compute_seconds += comp_s;
    if (mem_s > comp_s) {
      ++summary.memory_bound_steps;
    }
    backend_->AccountTime(step_time);
    t += step_time;
    ++summary.steps;

    // Post-step bookkeeping for decode steps: token production, TTFT,
    // completions.
    if (prefill == nullptr) {
      std::uint64_t resident = 0;
      for (Active& entry : active) {
        ++entry.produced_tokens;
        ++summary.decode_tokens;
        if (entry.first_token_at < 0.0) {
          entry.first_token_at = t;
          summary.ttft_ms.Add((t - entry.request.arrival_s) * 1e3);
        }
        resident += entry.kv_bytes;
      }
      summary.peak_kv_bytes = std::max(summary.peak_kv_bytes, static_cast<double>(resident));
      for (std::size_t i = active.size(); i-- > 0;) {
        Active& entry = active[i];
        if (entry.produced_tokens >= entry.request.output_tokens) {
          summary.e2e_latency_s.Add(t - entry.request.arrival_s);
          backend_->OnKvFreed(entry.kv_bytes);
          const std::uint64_t need =
              kv_per_token * static_cast<std::uint64_t>(entry.request.prompt_tokens +
                                                        entry.request.output_tokens);
          reserved_kv -= std::min(reserved_kv, need);
          ++summary.requests_completed;
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
    }
  }

  summary.duration_s = t;
  summary.mean_batch = decode_steps == 0 ? 0.0 : batch_accum / static_cast<double>(decode_steps);
  summary.backend_energy_j = backend_->EnergyJoules() - energy_at_start;
  return summary;
}

}  // namespace workload
}  // namespace mrm
