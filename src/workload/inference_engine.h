// Token-level foundation-model inference engine (paper §2).
//
// Models one inference server: continuous batching with prefill-priority
// scheduling, chunked prefill, per-token decode. Every step charges its
// traffic to a MemoryBackend:
//
//   prefill chunk:  read all weights once, write chunk x kv_bytes/token,
//                   compute 2 * params * chunk FLOPs;
//   decode step:    read all weights once (shared by the batch), read every
//                   active request's whole KV cache, append one vector per
//                   request, compute 2 * params * batch FLOPs.
//
// Step latency = max(memory seconds, compute seconds) — the roofline the
// paper's "memory bound" claim (§2.1) refers to. The engine optionally logs
// extents to a TraceSink for the predictability analysis (E4).

#ifndef MRMSIM_SRC_WORKLOAD_INFERENCE_ENGINE_H_
#define MRMSIM_SRC_WORKLOAD_INFERENCE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/stats.h"
#include "src/workload/backend.h"
#include "src/workload/model_config.h"
#include "src/workload/request_generator.h"
#include "src/workload/trace.h"

namespace mrm {
namespace workload {

struct EngineConfig {
  FoundationModelConfig model;
  int max_batch = 16;
  double compute_tflops = 400.0;      // sustained accelerator throughput
  int prefill_chunk_tokens = 2048;
  // Cap on total resident KV bytes; 0 defers to the backend's capacity.
  std::uint64_t kv_capacity_bytes = 0;
  // KV-cache compression (CacheGen-style, paper [27]): bytes actually moved
  // to/from memory are logical bytes x this ratio (1.0 = off). The codec
  // costs `kv_codec_flops_per_byte` per logical byte on the accelerator.
  double kv_compression_ratio = 1.0;
  double kv_codec_flops_per_byte = 0.0;
};

struct EngineSummary {
  double duration_s = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t prefill_tokens = 0;
  std::uint64_t decode_tokens = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_rejected = 0;  // KV admission failures

  // Byte ledger per stream.
  std::uint64_t weight_read_bytes = 0;
  std::uint64_t kv_read_bytes = 0;
  std::uint64_t kv_write_bytes = 0;
  std::uint64_t activation_read_bytes = 0;
  std::uint64_t activation_write_bytes = 0;

  // Decode-phase-only byte ledger (the paper's >1000:1 claim is about
  // decode: all weights + whole KV read per token vs. one vector written).
  std::uint64_t decode_read_bytes = 0;
  std::uint64_t decode_write_bytes = 0;

  // Physical KV bytes moved after compression (== kv_read+kv_write when
  // compression is off).
  std::uint64_t kv_moved_bytes = 0;

  double memory_seconds = 0.0;   // sum over steps of memory time
  double compute_seconds = 0.0;  // sum over steps of compute time
  std::uint64_t memory_bound_steps = 0;

  double backend_energy_j = 0.0;
  double peak_kv_bytes = 0.0;
  double mean_batch = 0.0;

  Histogram ttft_ms;        // time to first token
  Histogram e2e_latency_s;  // request completion latency

  std::uint64_t total_read_bytes() const {
    return weight_read_bytes + kv_read_bytes + activation_read_bytes;
  }
  std::uint64_t total_write_bytes() const {
    return kv_write_bytes + activation_write_bytes;
  }
  double read_write_ratio() const {
    return total_write_bytes() == 0
               ? 0.0
               : static_cast<double>(total_read_bytes()) /
                     static_cast<double>(total_write_bytes());
  }
  double decode_read_write_ratio() const {
    return decode_write_bytes == 0 ? 0.0
                                   : static_cast<double>(decode_read_bytes) /
                                         static_cast<double>(decode_write_bytes);
  }
  double decode_tokens_per_s() const {
    return duration_s == 0.0 ? 0.0 : static_cast<double>(decode_tokens) / duration_s;
  }
  double memory_bound_fraction() const {
    return steps == 0 ? 0.0
                      : static_cast<double>(memory_bound_steps) / static_cast<double>(steps);
  }
  double energy_per_decode_token_j() const {
    return decode_tokens == 0 ? 0.0 : backend_energy_j / static_cast<double>(decode_tokens);
  }
};

class InferenceEngine {
 public:
  // `backend` must outlive the engine; `trace` may be null.
  InferenceEngine(EngineConfig config, MemoryBackend* backend, TraceSink* trace = nullptr);

  // Processes all requests to completion and returns the summary.
  EngineSummary Run(std::vector<InferenceRequest> requests);

 private:
  struct Active {
    InferenceRequest request;
    int prefilled_tokens = 0;     // prompt tokens already prefilled
    int produced_tokens = 0;      // decode tokens emitted
    std::uint64_t kv_bytes = 0;   // resident KV for this request
    double first_token_at = -1.0;
  };

  EngineConfig config_;
  MemoryBackend* backend_;
  TraceSink* trace_;
};

}  // namespace workload
}  // namespace mrm

#endif  // MRMSIM_SRC_WORKLOAD_INFERENCE_ENGINE_H_
