#include "src/workload/model_config.h"

namespace mrm {
namespace workload {

Status FoundationModelConfig::Validate() const {
  if (parameters == 0 || layers <= 0 || heads <= 0 || kv_heads <= 0 || head_dim <= 0) {
    return Error(name + ": model dimensions must be positive");
  }
  if (kv_heads > heads) {
    return Error(name + ": kv_heads cannot exceed heads");
  }
  if (bytes_per_param <= 0 || bytes_per_kv <= 0 || max_context_tokens <= 0) {
    return Error(name + ": sizes must be positive");
  }
  return Status::Ok();
}

FoundationModelConfig Llama2_70B() {
  FoundationModelConfig m;
  m.name = "llama2-70b";
  m.parameters = 70'000'000'000ull;
  m.layers = 80;
  m.heads = 64;
  m.kv_heads = 8;  // GQA
  m.head_dim = 128;
  m.bytes_per_param = 2;
  m.bytes_per_kv = 2;
  m.max_context_tokens = 4096;
  return m;
}

FoundationModelConfig Llama2_70B_MHA() {
  FoundationModelConfig m = Llama2_70B();
  m.name = "llama2-70b-mha";
  m.kv_heads = m.heads;  // 64 KV heads -> 2.6 MiB per token
  return m;
}

FoundationModelConfig Gpt3_175B() {
  FoundationModelConfig m;
  m.name = "gpt3-175b";
  m.parameters = 175'000'000'000ull;
  m.layers = 96;
  m.heads = 96;
  m.kv_heads = 96;  // MHA
  m.head_dim = 128;
  m.bytes_per_param = 2;
  m.bytes_per_kv = 2;
  m.max_context_tokens = 8192;
  return m;
}

FoundationModelConfig Phi3_14B() {
  FoundationModelConfig m;
  m.name = "phi3-14b";
  m.parameters = 14'000'000'000ull;
  m.layers = 40;
  m.heads = 40;
  m.kv_heads = 10;
  m.head_dim = 128;
  m.bytes_per_param = 2;
  m.bytes_per_kv = 2;
  m.max_context_tokens = 4096;
  return m;
}

FoundationModelConfig Frontier_1T() {
  FoundationModelConfig m;
  m.name = "frontier-1t";
  m.parameters = 1'000'000'000'000ull;
  m.layers = 128;
  m.heads = 128;
  m.kv_heads = 16;
  m.head_dim = 128;
  m.bytes_per_param = 1;  // aggressive quantization at this scale
  m.bytes_per_kv = 2;
  m.max_context_tokens = 32768;
  return m;
}

Result<FoundationModelConfig> ModelByName(const std::string& name) {
  for (const auto& model : AllModels()) {
    if (model.name == name) {
      return model;
    }
  }
  return Error("unknown model: '" + name + "'");
}

std::vector<FoundationModelConfig> AllModels() {
  return {Llama2_70B(), Llama2_70B_MHA(), Gpt3_175B(), Phi3_14B(), Frontier_1T()};
}

}  // namespace workload
}  // namespace mrm
