// Foundation-model memory-footprint configuration (paper §2).
//
// Captures exactly the quantities the paper reasons about: weight bytes
// (params x quantization), KV-cache bytes per token (the "self-attention
// vector"), activation working set, and context limits.

#ifndef MRMSIM_SRC_WORKLOAD_MODEL_CONFIG_H_
#define MRMSIM_SRC_WORKLOAD_MODEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace mrm {
namespace workload {

struct FoundationModelConfig {
  std::string name;
  std::uint64_t parameters = 0;
  int layers = 0;
  int heads = 0;       // attention (query) heads
  int kv_heads = 0;    // KV heads (== heads for MHA, < heads for GQA)
  int head_dim = 0;
  int bytes_per_param = 2;  // FP16
  int bytes_per_kv = 2;
  int max_context_tokens = 4096;

  int d_model() const { return heads * head_dim; }

  // Total model weight bytes (the read-mostly matrix of §2).
  std::uint64_t weight_bytes() const {
    return parameters * static_cast<std::uint64_t>(bytes_per_param);
  }

  // The per-token self-attention vector: K and V across all layers.
  std::uint64_t kv_bytes_per_token() const {
    return 2ull * static_cast<std::uint64_t>(layers) * kv_heads * head_dim * bytes_per_kv;
  }

  std::uint64_t kv_cache_bytes(std::uint64_t context_tokens) const {
    return kv_bytes_per_token() * context_tokens;
  }

  // Transient activation working set for a batch of b sequences (order of
  // magnitude: a few live layer outputs per sequence).
  std::uint64_t activation_bytes(int batch) const {
    return static_cast<std::uint64_t>(batch) * 4ull * d_model() * bytes_per_param * 8;
  }

  Status Validate() const;
};

// Presets. Llama2-70B uses GQA (8 KV heads -> 320 KiB/token); the MHA
// variant models the "few MB per vector" class the paper cites [4, 44].
FoundationModelConfig Llama2_70B();
FoundationModelConfig Llama2_70B_MHA();
FoundationModelConfig Gpt3_175B();
FoundationModelConfig Phi3_14B();
FoundationModelConfig Frontier_1T();  // 1e12 params, the ">500B weights" tier

Result<FoundationModelConfig> ModelByName(const std::string& name);
std::vector<FoundationModelConfig> AllModels();

}  // namespace workload
}  // namespace mrm

#endif  // MRMSIM_SRC_WORKLOAD_MODEL_CONFIG_H_
