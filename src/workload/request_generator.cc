#include "src/workload/request_generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace mrm {
namespace workload {

int TokenDistribution::Sample(Rng& rng) const {
  // Lognormal with the given median: mu = ln(median).
  const double mu = std::log(static_cast<double>(median));
  const double value = rng.Lognormal(mu, sigma);
  const int tokens = static_cast<int>(std::lround(value));
  return std::clamp(tokens, min_tokens, max_tokens);
}

WorkloadProfile SplitwiseConversation() {
  WorkloadProfile profile;
  profile.name = "splitwise-conversation";
  profile.prompt = {.median = 1020, .sigma = 1.0, .min_tokens = 4, .max_tokens = 32768};
  profile.output = {.median = 129, .sigma = 0.9, .min_tokens = 1, .max_tokens = 4096};
  return profile;
}

WorkloadProfile SplitwiseCoding() {
  WorkloadProfile profile;
  profile.name = "splitwise-coding";
  profile.prompt = {.median = 1716, .sigma = 1.1, .min_tokens = 4, .max_tokens = 65536};
  profile.output = {.median = 28, .sigma = 0.8, .min_tokens = 1, .max_tokens = 2048};
  return profile;
}

WorkloadProfile LongContextSummarization() {
  WorkloadProfile profile;
  profile.name = "long-context-summarization";
  profile.prompt = {.median = 12000, .sigma = 0.7, .min_tokens = 1024, .max_tokens = 1 << 17};
  profile.output = {.median = 400, .sigma = 0.6, .min_tokens = 16, .max_tokens = 4096};
  return profile;
}

RequestGenerator::RequestGenerator(WorkloadProfile profile, double arrivals_per_s,
                                   std::uint64_t seed)
    : profile_(std::move(profile)), arrivals_per_s_(arrivals_per_s), rng_(seed) {
  MRM_CHECK(arrivals_per_s_ > 0.0);
}

InferenceRequest RequestGenerator::Next() {
  clock_s_ += rng_.Exponential(arrivals_per_s_);
  InferenceRequest request;
  request.id = next_id_++;
  request.arrival_s = clock_s_;
  request.prompt_tokens = profile_.prompt.Sample(rng_);
  request.output_tokens = profile_.output.Sample(rng_);
  return request;
}

std::vector<InferenceRequest> RequestGenerator::GenerateFor(double horizon_s) {
  std::vector<InferenceRequest> requests;
  while (true) {
    InferenceRequest request = Next();
    if (request.arrival_s >= horizon_s) {
      break;
    }
    requests.push_back(request);
  }
  return requests;
}

}  // namespace workload
}  // namespace mrm
