// Inference request generation: Poisson arrivals with context-length
// distributions calibrated to the Splitwise production traces the paper
// cites for its endurance math (§3).

#ifndef MRMSIM_SRC_WORKLOAD_REQUEST_GENERATOR_H_
#define MRMSIM_SRC_WORKLOAD_REQUEST_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace mrm {
namespace workload {

struct InferenceRequest {
  std::uint64_t id = 0;
  double arrival_s = 0.0;
  int prompt_tokens = 0;
  int output_tokens = 0;
};

// Lognormal token-count distribution specified by its median and a shape
// parameter sigma (of the underlying normal).
struct TokenDistribution {
  int median = 1024;
  double sigma = 0.8;
  int min_tokens = 1;
  int max_tokens = 1 << 20;

  int Sample(Rng& rng) const;
};

struct WorkloadProfile {
  std::string name;
  TokenDistribution prompt;
  TokenDistribution output;
};

// Splitwise (ISCA'24) reports ~1020-token median prompts with ~129-token
// median outputs for conversation, and ~1716 / ~28 for coding.
WorkloadProfile SplitwiseConversation();
WorkloadProfile SplitwiseCoding();
// Long-context summarization-style profile (stresses KV capacity).
WorkloadProfile LongContextSummarization();

class RequestGenerator {
 public:
  RequestGenerator(WorkloadProfile profile, double arrivals_per_s, std::uint64_t seed);

  // Next request in arrival order.
  InferenceRequest Next();

  // Generates all requests arriving within [0, horizon_s).
  std::vector<InferenceRequest> GenerateFor(double horizon_s);

  const WorkloadProfile& profile() const { return profile_; }

 private:
  WorkloadProfile profile_;
  double arrivals_per_s_;
  Rng rng_;
  double clock_s_ = 0.0;
  std::uint64_t next_id_ = 1;
};

}  // namespace workload
}  // namespace mrm

#endif  // MRMSIM_SRC_WORKLOAD_REQUEST_GENERATOR_H_
