#include "src/workload/trace.h"

#include <algorithm>
#include <map>

namespace mrm {
namespace workload {
namespace {

// Key identifying one sub-stream.
struct StreamKey {
  Stream stream;
  std::uint64_t key;
  bool operator<(const StreamKey& other) const {
    if (stream != other.stream) {
      return stream < other.stream;
    }
    return key < other.key;
  }
};

}  // namespace

const char* StreamName(Stream stream) {
  switch (stream) {
    case Stream::kNone:
      return "none";
    case Stream::kWeights:
      return "weights";
    case Stream::kKvCache:
      return "kv-cache";
    case Stream::kActivations:
      return "activations";
  }
  return "?";
}

PredictabilityReport AnalyzeTrace(const std::vector<TraceExtent>& extents,
                                  std::uint64_t page_bytes) {
  PredictabilityReport report;

  struct StreamState {
    std::uint64_t last_read_end = 0;
    bool has_read = false;
    std::uint64_t high_water = 0;
  };
  std::map<StreamKey, StreamState> states;

  std::uint64_t sequential_read_bytes = 0;
  std::uint64_t append_write_bytes = 0;
  std::uint64_t overwrite_bytes = 0;

  // Page order per step for stability analysis (weights stream only: it is
  // the stream that is re-read every step).
  std::map<std::uint64_t, std::vector<std::uint64_t>> step_pages;

  for (const TraceExtent& extent : extents) {
    StreamState& state = states[StreamKey{extent.stream, extent.stream_key}];
    if (extent.is_write) {
      report.write_bytes += extent.length;
      if (extent.offset >= state.high_water) {
        append_write_bytes += extent.length;
      } else {
        overwrite_bytes += extent.length;
      }
      state.high_water = std::max(state.high_water, extent.offset + extent.length);
    } else {
      report.read_bytes += extent.length;
      if (state.has_read && extent.offset == state.last_read_end) {
        // Contiguous with the previous extent: fully sequential.
        sequential_read_bytes += extent.length;
      } else {
        // A jump costs one access granule; the rest of the extent still
        // streams sequentially (an extent is one contiguous transfer).
        constexpr std::uint64_t kAccessGranule = 64;
        sequential_read_bytes +=
            extent.length - std::min<std::uint64_t>(extent.length, kAccessGranule);
      }
      state.last_read_end = extent.offset + extent.length;
      state.has_read = true;
      if (extent.stream == Stream::kWeights) {
        auto& pages = step_pages[extent.step];
        const std::uint64_t first_page = extent.offset / page_bytes;
        const std::uint64_t last_page = (extent.offset + extent.length - 1) / page_bytes;
        for (std::uint64_t p = first_page; p <= last_page; ++p) {
          if (pages.empty() || pages.back() != p) {
            pages.push_back(p);
          }
        }
      }
    }
  }

  if (report.read_bytes > 0) {
    report.read_sequential_fraction =
        static_cast<double>(sequential_read_bytes) / static_cast<double>(report.read_bytes);
  }
  if (report.write_bytes > 0) {
    report.write_append_fraction =
        static_cast<double>(append_write_bytes) / static_cast<double>(report.write_bytes);
    report.overwrite_fraction =
        static_cast<double>(overwrite_bytes) / static_cast<double>(report.write_bytes);
  }

  // Step order stability over the weights stream.
  std::uint64_t stable_pairs = 0;
  std::uint64_t total_pairs = 0;
  const std::vector<std::uint64_t>* previous = nullptr;
  for (const auto& [step, pages] : step_pages) {
    if (previous != nullptr) {
      ++total_pairs;
      if (*previous == pages) {
        ++stable_pairs;
      }
    }
    previous = &pages;
  }
  report.step_order_stability =
      total_pairs == 0 ? 1.0 : static_cast<double>(stable_pairs) / static_cast<double>(total_pairs);
  return report;
}

}  // namespace workload
}  // namespace mrm
