// Extent-level access trace recording and predictability analysis (E4).
//
// The paper's argument for a block interface rests on the access pattern
// being "sequential and predictable" (§2.2). The trace records logical
// extents (stream, offset, length, kind, step) and the analyzer quantifies:
//  * sequentiality — fraction of read/write bytes contiguous with the
//    previous access in the same stream;
//  * appendedness — fraction of writes that extend the stream's high-water
//    mark rather than overwrite;
//  * inter-step stability — whether successive decode steps read pages in
//    the same order (the "static virtual->physical mapping" property).

#ifndef MRMSIM_SRC_WORKLOAD_TRACE_H_
#define MRMSIM_SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mrm {
namespace workload {

enum class Stream : std::uint32_t { kNone = 0, kWeights = 1, kKvCache = 2, kActivations = 3 };

const char* StreamName(Stream stream);

struct TraceExtent {
  Stream stream = Stream::kNone;
  std::uint64_t stream_key = 0;  // sub-stream (e.g. request id for KV)
  bool is_write = false;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t step = 0;  // engine step counter
};

class TraceSink {
 public:
  void Record(const TraceExtent& extent) { extents_.push_back(extent); }
  const std::vector<TraceExtent>& extents() const { return extents_; }
  void Clear() { extents_.clear(); }

 private:
  std::vector<TraceExtent> extents_;
};

struct PredictabilityReport {
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  double read_sequential_fraction = 0.0;   // contiguous-with-previous reads
  double write_append_fraction = 0.0;      // writes at the high-water mark
  double overwrite_fraction = 0.0;         // writes below the high-water mark
  // Fraction of consecutive step pairs whose page read order is identical
  // (pages of `page_bytes`).
  double step_order_stability = 0.0;
};

PredictabilityReport AnalyzeTrace(const std::vector<TraceExtent>& extents,
                                  std::uint64_t page_bytes = 2 * 1024 * 1024);

}  // namespace workload
}  // namespace mrm

#endif  // MRMSIM_SRC_WORKLOAD_TRACE_H_
