#include "src/analysis/density.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace mrm {
namespace analysis {
namespace {

cell::OperatingPoint SlcPoint() {
  auto tradeoff = cell::MakeRramTradeoff();
  return tradeoff->AtRetention(6.0 * kHour);
}

constexpr std::uint64_t kCodeword = 8ull * 64 * 1024;
constexpr double kTargetUber = 1e-15;

TEST(Density, SlcIsUnity) {
  const MlcDensityReport report = ComputeMlcDensity(SlcPoint(), 1, kCodeword, kTargetUber);
  EXPECT_DOUBLE_EQ(report.net_gain, 1.0);
  EXPECT_TRUE(report.feasible);
}

TEST(Density, MlcNetGainBelowGross) {
  for (int bits = 2; bits <= 4; ++bits) {
    const MlcDensityReport report =
        ComputeMlcDensity(SlcPoint(), bits, kCodeword, kTargetUber);
    EXPECT_LT(report.net_gain, report.gross_gain) << bits;
    EXPECT_GT(report.net_gain, 0.0) << bits;
  }
}

TEST(Density, GainsSaturateAtHighBits) {
  // The marginal gain of the 4th bit is much smaller than the 2nd.
  const double g1 = ComputeMlcDensity(SlcPoint(), 1, kCodeword, kTargetUber).net_gain;
  const double g2 = ComputeMlcDensity(SlcPoint(), 2, kCodeword, kTargetUber).net_gain;
  const double g3 = ComputeMlcDensity(SlcPoint(), 3, kCodeword, kTargetUber).net_gain;
  const double g4 = ComputeMlcDensity(SlcPoint(), 4, kCodeword, kTargetUber).net_gain;
  EXPECT_GT(g2 - g1, g4 - g3);
}

TEST(Density, EccOverheadGrowsWithBits) {
  double previous = 0.0;
  for (int bits = 1; bits <= 4; ++bits) {
    const MlcDensityReport report =
        ComputeMlcDensity(SlcPoint(), bits, kCodeword, kTargetUber);
    EXPECT_GE(report.ecc_overhead, previous);
    previous = report.ecc_overhead;
  }
}

TEST(Density, HopelessRberIsInfeasible) {
  cell::OperatingPoint bad = SlcPoint();
  bad.rber_at_retention = 0.02;  // QLC on top of this cannot be saved
  const MlcDensityReport report = ComputeMlcDensity(bad, 4, kCodeword, kTargetUber);
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(report.net_gain, 0.0);
}

TEST(Density, CombinedMultipliesCrossbarAndMlc) {
  cell::CrossbarParams crossbar;
  const MlcDensityReport mlc = ComputeMlcDensity(SlcPoint(), 2, kCodeword, kTargetUber);
  const double combined = CombinedDensityVsDram(crossbar, mlc);
  const double crossbar_only = cell::EvaluateCrossbar(crossbar).density_vs_dram;
  EXPECT_NEAR(combined, crossbar_only * mlc.net_gain, 1e-9);
}

TEST(Density, StackedMlcCrossbarBeatsDramByALot) {
  // The §3 headline: stacked resistive memory with MLC clears planar DRAM
  // density by an order of magnitude.
  cell::CrossbarParams crossbar;
  crossbar.stacked_layers = 8;
  const MlcDensityReport mlc = ComputeMlcDensity(SlcPoint(), 2, kCodeword, kTargetUber);
  EXPECT_GT(CombinedDensityVsDram(crossbar, mlc), 10.0);
}

}  // namespace
}  // namespace analysis
}  // namespace mrm
