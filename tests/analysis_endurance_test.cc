#include "src/analysis/endurance.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/units.h"

namespace mrm {
namespace analysis {
namespace {

TEST(Endurance, WeightsHourlyOverFiveYears) {
  // 5 x 365 x 24 = 43800 writes per cell.
  WeightsEnduranceParams params;
  params.update_interval_s = kHour;
  EXPECT_NEAR(WeightsWritesPerCell(params), 43800.0, 1.0);
}

TEST(Endurance, WeightsPerSecondOverFiveYears) {
  WeightsEnduranceParams params;
  params.update_interval_s = 1.0;
  EXPECT_NEAR(WeightsWritesPerCell(params), 1.577e8, 1e6);
}

TEST(Endurance, KvWritesScaleWithTokenRate) {
  KvEnduranceParams params;
  params.model = workload::Llama2_70B_MHA();
  params.kv_region_bytes = 256ull * kGiB;
  const double base = KvWritesPerCell(params);
  params.prefill_tokens_per_s *= 2.0;
  params.decode_tokens_per_s *= 2.0;
  EXPECT_NEAR(KvWritesPerCell(params), base * 2.0, base * 0.001);
}

TEST(Endurance, KvWritesInverseInRegionSize) {
  KvEnduranceParams params;
  params.model = workload::Llama2_70B_MHA();
  params.kv_region_bytes = 256ull * kGiB;
  const double base = KvWritesPerCell(params);
  params.kv_region_bytes *= 4;
  EXPECT_NEAR(KvWritesPerCell(params), base / 4.0, base * 0.001);
}

TEST(Endurance, ImperfectWearLevelingRaisesRequirement) {
  KvEnduranceParams params;
  params.model = workload::Llama2_70B();
  params.kv_region_bytes = 256ull * kGiB;
  const double perfect = KvWritesPerCell(params);
  params.wear_leveling_efficiency = 0.5;
  EXPECT_NEAR(KvWritesPerCell(params), perfect * 2.0, perfect * 0.001);
}

TEST(Endurance, DefaultKvRequirementInPaperBand) {
  // The paper's Figure 1 places the KV requirement above current SCM
  // products (1e5-1e7) but below the technology potentials (1e9+).
  Figure1Params params;
  const double kv = KvWritesPerCell(params.kv);
  EXPECT_GT(kv, 1e6);
  EXPECT_LT(kv, 1e9);
}

TEST(Figure1, ContainsRequirementAndSupplyBars) {
  const auto entries = BuildFigure1(Figure1Params{});
  int requirements = 0;
  int products = 0;
  int potentials = 0;
  for (const auto& entry : entries) {
    switch (entry.kind) {
      case Figure1Entry::Kind::kRequirement:
        ++requirements;
        break;
      case Figure1Entry::Kind::kProductEndurance:
        ++products;
        break;
      case Figure1Entry::Kind::kTechnologyPotential:
        ++potentials;
        break;
    }
    EXPECT_GT(entry.cycles, 0.0) << entry.label;
  }
  EXPECT_EQ(requirements, 3);  // weights x2 + KV
  EXPECT_GE(products, 6);
  EXPECT_GE(potentials, 6);
}

TEST(Figure1, HbmVastlyOverprovisioned) {
  // Paper finding 1: "HBM is vastly overprovisioned on endurance."
  const auto entries = BuildFigure1(Figure1Params{});
  double max_requirement = 0.0;
  double hbm_product = 0.0;
  for (const auto& entry : entries) {
    if (entry.kind == Figure1Entry::Kind::kRequirement) {
      max_requirement = std::max(max_requirement, entry.cycles);
    }
    if (entry.label.find("HBM") != std::string::npos &&
        entry.kind == Figure1Entry::Kind::kProductEndurance) {
      hbm_product = entry.cycles;
    }
  }
  ASSERT_GT(hbm_product, 0.0);
  EXPECT_GT(hbm_product / max_requirement, 1e5);  // 5+ orders of magnitude
}

TEST(Figure1, ScmProductsMissButPotentialsMeet) {
  // Paper finding 2: "existing SCM devices do not meet the endurance
  // requirements but the underlying technologies have the potential."
  Figure1Params params;
  const double kv_requirement = KvWritesPerCell(params.kv);
  for (cell::Technology tech :
       {cell::Technology::kPcm, cell::Technology::kRram}) {
    const EnduranceVerdict verdict = JudgeEndurance(tech, kv_requirement);
    EXPECT_FALSE(verdict.product_meets) << cell::TechnologyName(tech);
    EXPECT_TRUE(verdict.potential_meets) << cell::TechnologyName(tech);
  }
  // STT-MRAM products are already strong enough; potential certainly is.
  EXPECT_TRUE(JudgeEndurance(cell::Technology::kSttMram, kv_requirement).potential_meets);
}

TEST(Figure1, NandCannotMeetKvRequirementEvenPotentially) {
  // Paper §3: flash lacks endurance "even with SLC".
  Figure1Params params;
  const double kv_requirement = KvWritesPerCell(params.kv);
  const EnduranceVerdict slc = JudgeEndurance(cell::Technology::kNandSlc, kv_requirement);
  EXPECT_FALSE(slc.product_meets);
  EXPECT_FALSE(slc.potential_meets);
}

TEST(Figure1, WeightsHourlyMetByAllScmProducts) {
  // Hourly weight updates need only ~4.4e4 writes: every SCM product
  // except worn-down RRAM meets it.
  WeightsEnduranceParams weights;
  const double requirement = WeightsWritesPerCell(weights);
  EXPECT_TRUE(JudgeEndurance(cell::Technology::kPcm, requirement).product_meets);
  EXPECT_TRUE(JudgeEndurance(cell::Technology::kSttMram, requirement).product_meets);
  EXPECT_TRUE(JudgeEndurance(cell::Technology::kRram, requirement).product_meets);
}

TEST(Endurance, VerdictMarginsConsistent) {
  const EnduranceVerdict verdict = JudgeEndurance(cell::Technology::kPcm, 1e6);
  EXPECT_NEAR(verdict.product_margin, 1e7 / 1e6, 1e-6);
  EXPECT_NEAR(verdict.potential_margin, 1e9 / 1e6, 1e-3);
  EXPECT_TRUE(verdict.product_meets);
  EXPECT_TRUE(verdict.potential_meets);
}

}  // namespace
}  // namespace analysis
}  // namespace mrm
