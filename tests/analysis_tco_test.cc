#include "src/analysis/tco.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace mrm {
namespace analysis {
namespace {

workload::EngineSummary FakeSummary() {
  workload::EngineSummary summary;
  summary.duration_s = 100.0;
  summary.decode_tokens = 10000;
  summary.backend_energy_j = 5000.0;  // 50 W average
  return summary;
}

workload::TierSpec FakeTier(std::uint64_t gib, double cost_per_gib) {
  workload::TierSpec spec;
  spec.capacity_bytes = gib * kGiB;
  spec.cost_per_gib = cost_per_gib;
  spec.read_bw_bytes_per_s = 1.0;
  spec.write_bw_bytes_per_s = 1.0;
  return spec;
}

TEST(Tco, MemoryCostSums) {
  const TcoReport report = ComputeTco(FakeSummary(), {FakeTier(100, 10.0), FakeTier(50, 2.0)});
  EXPECT_NEAR(report.memory_cost_dollars, 1100.0, 1e-6);
}

TEST(Tco, ThroughputAndEnergyDerived) {
  const TcoReport report = ComputeTco(FakeSummary(), {FakeTier(100, 10.0)});
  EXPECT_NEAR(report.tokens_per_s, 100.0, 1e-9);
  EXPECT_NEAR(report.energy_per_token_j, 0.5, 1e-9);
  EXPECT_NEAR(report.memory_power_w, 50.0, 1e-9);
}

TEST(Tco, TokensPerDollarFavorsCheaperMemory) {
  const TcoReport expensive = ComputeTco(FakeSummary(), {FakeTier(100, 12.0)});
  const TcoReport cheap = ComputeTco(FakeSummary(), {FakeTier(100, 2.0)});
  EXPECT_GT(cheap.tokens_per_memory_dollar, expensive.tokens_per_memory_dollar);
}

TEST(Tco, EnergyPriceMatters) {
  TcoParams cheap_power;
  cheap_power.electricity_dollars_per_kwh = 0.01;
  TcoParams costly_power;
  costly_power.electricity_dollars_per_kwh = 1.0;
  const TcoReport cheap = ComputeTco(FakeSummary(), {FakeTier(100, 10.0)}, cheap_power);
  const TcoReport costly = ComputeTco(FakeSummary(), {FakeTier(100, 10.0)}, costly_power);
  EXPECT_GT(cheap.tokens_per_memory_dollar, costly.tokens_per_memory_dollar);
}

TEST(Tco, EmptyRunYieldsZeros) {
  workload::EngineSummary summary;
  const TcoReport report = ComputeTco(summary, {FakeTier(10, 1.0)});
  EXPECT_EQ(report.tokens_per_s, 0.0);
  EXPECT_EQ(report.energy_per_token_j, 0.0);
  EXPECT_EQ(report.tokens_per_memory_dollar, 0.0);
}

}  // namespace
}  // namespace analysis
}  // namespace mrm
