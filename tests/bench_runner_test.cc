#include "bench/common/bench_runner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench/common/sim_workloads.h"
#include "src/mem/device_config.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace bench {
namespace {

// Builds the same sweep every time: a mix of pure-CPU points and real
// closed-loop simulations, all self-contained per the runner's determinism
// contract.
void BuildSweep(BenchRunner& runner) {
  for (int p = 0; p < 6; ++p) {
    runner.Add("cpu_" + std::to_string(p), [p](PointResult& r) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(p) + 1);
      double sum = 0.0;
      for (int i = 0; i < 50000; ++i) {
        sum += static_cast<double>(rng() % 1000);
      }
      r.events = 50000;
      r.metrics["sum"] = sum;
    });
  }
  for (int p = 0; p < 2; ++p) {
    runner.Add("sim_" + std::to_string(p), [p](PointResult& r) {
      sim::Simulator sim;
      mem::MemorySystem system(&sim, mem::DDR5Config());
      const MemRunResult run = MemClosedLoop(sim, system, /*total=*/4000, /*window=*/64,
                                             /*read_pct=*/60, /*seq_pct=*/50,
                                             /*rng_seed=*/static_cast<std::uint64_t>(p) + 1);
      r.events = run.events;
      r.metrics["reads"] = static_cast<double>(run.reads);
      r.metrics["read_latency_mean_ns"] = run.read_latency_mean_ns;
      r.metrics["row_hit_rate"] = run.row_hit_rate;
    });
  }
}

TEST(BenchRunner, MultiThreadedSweepMatchesSingleThreaded) {
  setenv("MRMSIM_BENCH_OUT", "/tmp", 1);

  BenchRunner single("runner_test_st");
  BuildSweep(single);
  ASSERT_EQ(single.RunAndReport(/*threads=*/1), 0);

  BenchRunner multi("runner_test_mt");
  BuildSweep(multi);
  ASSERT_EQ(multi.RunAndReport(/*threads=*/8), 0);

  ASSERT_EQ(single.results().size(), multi.results().size());
  for (std::size_t i = 0; i < single.results().size(); ++i) {
    const auto& [st_label, st] = single.results()[i];
    const auto& [mt_label, mt] = multi.results()[i];
    EXPECT_EQ(st_label, mt_label) << "point " << i;
    EXPECT_EQ(st.events, mt.events) << st_label;
    ASSERT_EQ(st.metrics.size(), mt.metrics.size()) << st_label;
    for (const auto& [key, value] : st.metrics) {
      const auto it = mt.metrics.find(key);
      ASSERT_NE(it, mt.metrics.end()) << st_label << "." << key;
      // Bit-identical, not approximately equal: the sweep points must not
      // share any state for threading to reorder.
      EXPECT_EQ(value, it->second) << st_label << "." << key;
    }
  }
}

TEST(BenchRunner, ParseFlagsResolveArgOverEnvOverFallback) {
  const auto with_args = [](std::vector<std::string> args, auto fn) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("bench"));
    for (std::string& a : args) {
      argv.push_back(a.data());
    }
    return fn(static_cast<int>(argv.size()), argv.data());
  };

  unsetenv("MRMSIM_SIM_THREADS");
  unsetenv("MRMSIM_EPOCH_BATCH");
  EXPECT_EQ(with_args({}, [](int c, char** v) { return ParseSimThreads(c, v, 3); }), 3);
  EXPECT_EQ(with_args({}, [](int c, char** v) { return ParseEpochBatch(c, v, 0); }), 0);
  EXPECT_EQ(with_args({"--sim-threads=8"},
                      [](int c, char** v) { return ParseSimThreads(c, v, 3); }),
            8);
  EXPECT_EQ(with_args({"--sim-epoch-batch=16"},
                      [](int c, char** v) { return ParseEpochBatch(c, v, 0); }),
            16);

  setenv("MRMSIM_SIM_THREADS", "2", 1);
  setenv("MRMSIM_EPOCH_BATCH", "4", 1);
  EXPECT_EQ(with_args({}, [](int c, char** v) { return ParseSimThreads(c, v, 3); }), 2);
  EXPECT_EQ(with_args({}, [](int c, char** v) { return ParseEpochBatch(c, v, 0); }), 4);
  // An explicit argument wins over the environment.
  EXPECT_EQ(with_args({"--sim-threads=6"},
                      [](int c, char** v) { return ParseSimThreads(c, v, 3); }),
            6);
  EXPECT_EQ(with_args({"--sim-epoch-batch=1"},
                      [](int c, char** v) { return ParseEpochBatch(c, v, 0); }),
            1);
  unsetenv("MRMSIM_SIM_THREADS");
  unsetenv("MRMSIM_EPOCH_BATCH");

  // Out-of-range values clamp to the safe end: serial / auto.
  EXPECT_EQ(with_args({"--sim-threads=-2"},
                      [](int c, char** v) { return ParseSimThreads(c, v, 3); }),
            1);
  EXPECT_EQ(with_args({"--sim-epoch-batch=-7"},
                      [](int c, char** v) { return ParseEpochBatch(c, v, 5); }),
            0);
}

TEST(BenchRunner, StrictKnobsRejectBadValuesLoudly) {
  const auto with_args = [](std::vector<std::string> args, auto fn) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("bench"));
    for (std::string& a : args) {
      argv.push_back(a.data());
    }
    return fn(static_cast<int>(argv.size()), argv.data());
  };
  const auto spins = [](int c, char** v) { return ParseSpinsPerYield(c, v); };
  const auto spec = [](int c, char** v) { return ParseSpecHorizon(c, v); };

  unsetenv("MRMSIM_SPINS_PER_YIELD");
  unsetenv("MRMSIM_SPEC_HORIZON");
  EXPECT_EQ(with_args({}, spins), 0);
  EXPECT_EQ(with_args({}, spec), 0u);
  EXPECT_EQ(with_args({"--spins-per-yield=512"}, spins), 512);
  EXPECT_EQ(with_args({"--sim-spec-horizon=4096"}, spec), 4096u);

  // Env applies, an explicit argument wins (the MRMSIM_EPOCH_BATCH pattern).
  setenv("MRMSIM_SPINS_PER_YIELD", "128", 1);
  setenv("MRMSIM_SPEC_HORIZON", "256", 1);
  EXPECT_EQ(with_args({}, spins), 128);
  EXPECT_EQ(with_args({}, spec), 256u);
  EXPECT_EQ(with_args({"--spins-per-yield=64"}, spins), 64);
  EXPECT_EQ(with_args({"--sim-spec-horizon=1024"}, spec), 1024u);

  // Malformed or negative values are ignored (with a one-line stderr
  // diagnostic) — the previously-resolved value stands.
  EXPECT_EQ(with_args({"--spins-per-yield=banana"}, spins), 128);
  EXPECT_EQ(with_args({"--spins-per-yield=-5"}, spins), 128);
  EXPECT_EQ(with_args({"--sim-spec-horizon=12abc"}, spec), 256u);
  setenv("MRMSIM_SPINS_PER_YIELD", "not-a-number", 1);
  EXPECT_EQ(with_args({}, spins), 0);
  EXPECT_EQ(with_args({"--spins-per-yield=32"}, spins), 32);
  unsetenv("MRMSIM_SPINS_PER_YIELD");
  unsetenv("MRMSIM_SPEC_HORIZON");
}

TEST(BenchRunner, ResultsKeepRegistrationOrder) {
  setenv("MRMSIM_BENCH_OUT", "/tmp", 1);
  BenchRunner runner("runner_test_order");
  for (int p = 0; p < 16; ++p) {
    runner.Add("p" + std::to_string(p), [p](PointResult& r) { r.events = 100u + p; });
  }
  ASSERT_EQ(runner.RunAndReport(/*threads=*/4), 0);
  ASSERT_EQ(runner.results().size(), 16u);
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(runner.results()[static_cast<std::size_t>(p)].first, "p" + std::to_string(p));
    EXPECT_EQ(runner.results()[static_cast<std::size_t>(p)].second.events, 100u + p);
  }
}

}  // namespace
}  // namespace bench
}  // namespace mrm
