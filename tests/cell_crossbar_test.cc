#include "src/cell/crossbar.h"

#include <gtest/gtest.h>

namespace mrm {
namespace cell {
namespace {

TEST(Crossbar, DefaultDesignIsFeasible) {
  const CrossbarDesign design = EvaluateCrossbar(CrossbarParams{});
  EXPECT_GT(design.max_array_dim, 100u);
  EXPECT_GT(design.area_efficiency, 0.9);
  EXPECT_GT(design.density_vs_dram, 1.0);  // the §3 density claim
}

TEST(Crossbar, MaxDimIsMinOfBounds) {
  const CrossbarDesign design = EvaluateCrossbar(CrossbarParams{});
  EXPECT_EQ(design.max_array_dim, std::min(design.ir_drop_bound, design.sneak_bound));
}

TEST(Crossbar, HigherWireResistanceShrinksArray) {
  CrossbarParams low;
  CrossbarParams high;
  high.wire_resistance_per_cell_ohm = low.wire_resistance_per_cell_ohm * 4.0;
  EXPECT_GT(EvaluateCrossbar(low).ir_drop_bound, EvaluateCrossbar(high).ir_drop_bound);
}

TEST(Crossbar, IrDropBoundScalesWithCellResistance) {
  CrossbarParams base;
  CrossbarParams high_r;
  high_r.cell_on_resistance_ohm = base.cell_on_resistance_ohm * 2.0;
  EXPECT_NEAR(static_cast<double>(EvaluateCrossbar(high_r).ir_drop_bound),
              2.0 * static_cast<double>(EvaluateCrossbar(base).ir_drop_bound), 2.0);
}

TEST(Crossbar, WeakSelectorBoundsBySneak) {
  CrossbarParams params;
  params.selector_selectivity = 100.0;
  const CrossbarDesign design = EvaluateCrossbar(params);
  EXPECT_EQ(design.max_array_dim, design.sneak_bound);
  EXPECT_LT(design.max_array_dim, 100u);
}

TEST(Crossbar, StackingMultipliesDensity) {
  CrossbarParams one;
  CrossbarParams eight;
  eight.stacked_layers = 8;
  EXPECT_NEAR(EvaluateCrossbar(eight).density_vs_dram,
              8.0 * EvaluateCrossbar(one).density_vs_dram, 1e-9);
}

TEST(Crossbar, AreaEfficiencyImprovesWithN) {
  const CrossbarParams params;
  EXPECT_LT(CrossbarAreaEfficiency(64, params), CrossbarAreaEfficiency(1024, params));
  EXPECT_EQ(CrossbarAreaEfficiency(0, params), 0.0);
}

TEST(Crossbar, SmallArraysLoseDensityToPeriphery) {
  // A sneak-limited tiny array can end up *below* DRAM density.
  CrossbarParams params;
  params.selector_selectivity = 20.0;  // hopeless selector
  const CrossbarDesign design = EvaluateCrossbar(params);
  EXPECT_LT(design.area_efficiency, 0.6);
}

}  // namespace
}  // namespace cell
}  // namespace mrm
