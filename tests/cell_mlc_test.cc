#include "src/cell/mlc.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace mrm {
namespace cell {
namespace {

OperatingPoint SlcPoint() {
  auto tradeoff = MakeRramTradeoff();
  return tradeoff->AtRetention(6.0 * kHour);
}

TEST(Mlc, SlcIsIdentity) {
  const OperatingPoint slc = SlcPoint();
  const OperatingPoint same = DerateForMlc(slc, 1);
  EXPECT_DOUBLE_EQ(same.rber_at_retention, slc.rber_at_retention);
  EXPECT_DOUBLE_EQ(same.write_latency_ns, slc.write_latency_ns);
  EXPECT_DOUBLE_EQ(same.endurance_cycles, slc.endurance_cycles);
}

TEST(Mlc, RberMultiplierGrowsSuperlinearly) {
  const double two = MlcRberMultiplier(2);
  const double three = MlcRberMultiplier(3);
  const double four = MlcRberMultiplier(4);
  EXPECT_GT(two, 1.0);
  EXPECT_GT(three, 2.0 * two);
  EXPECT_GT(four, 2.0 * three);
}

TEST(Mlc, DefaultMultiplierMatchesFormula) {
  // (2^2 - 1)^2 = 9 for MLC, (2^3 - 1)^2 = 49 for TLC.
  EXPECT_DOUBLE_EQ(MlcRberMultiplier(2), 9.0);
  EXPECT_DOUBLE_EQ(MlcRberMultiplier(3), 49.0);
}

TEST(Mlc, RberDegradesWithBits) {
  const OperatingPoint slc = SlcPoint();
  double previous = slc.rber_at_retention;
  for (int bits = 2; bits <= 4; ++bits) {
    const OperatingPoint point = DerateForMlc(slc, bits);
    EXPECT_GT(point.rber_at_retention, previous);
    previous = point.rber_at_retention;
  }
}

TEST(Mlc, WriteLatencyGrowsWithBits) {
  const OperatingPoint slc = SlcPoint();
  const OperatingPoint mlc = DerateForMlc(slc, 2);
  const OperatingPoint tlc = DerateForMlc(slc, 3);
  EXPECT_GT(mlc.write_latency_ns, slc.write_latency_ns);
  EXPECT_GT(tlc.write_latency_ns, mlc.write_latency_ns);
}

TEST(Mlc, PerBitWriteEnergyCanImprove) {
  // At 2 bits/cell, amortization can beat the program-verify overhead.
  const OperatingPoint slc = SlcPoint();
  MlcParams cheap_verify;
  cheap_verify.program_iteration_cost = 0.2;
  const OperatingPoint mlc = DerateForMlc(slc, 2, cheap_verify);
  EXPECT_LT(mlc.write_energy_pj_per_bit, slc.write_energy_pj_per_bit);
}

TEST(Mlc, EnduranceDegradesWithBits) {
  const OperatingPoint slc = SlcPoint();
  const OperatingPoint qlc = DerateForMlc(slc, 4);
  EXPECT_LT(qlc.endurance_cycles, slc.endurance_cycles);
  EXPECT_NEAR(qlc.endurance_cycles, slc.endurance_cycles * 0.125, slc.endurance_cycles * 1e-9);
}

TEST(Mlc, RetentionTargetUnchanged) {
  const OperatingPoint slc = SlcPoint();
  const OperatingPoint mlc = DerateForMlc(slc, 3);
  EXPECT_DOUBLE_EQ(mlc.retention_s, slc.retention_s);
}

TEST(Mlc, RejectsInvalidBits) {
  const OperatingPoint slc = SlcPoint();
  EXPECT_DEATH(DerateForMlc(slc, 0), "bits_per_cell");
  EXPECT_DEATH(DerateForMlc(slc, 5), "bits_per_cell");
}

}  // namespace
}  // namespace cell
}  // namespace mrm
