#include "src/cell/refresh_model.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace mrm {
namespace cell {
namespace {

RefreshModelParams HbmStack24GiB() {
  RefreshModelParams params;
  params.capacity_bytes = 24ull * kGiB;
  params.retention_window_s = 0.032;
  params.row_bytes = 1024;
  params.energy_per_row_refresh_pj = 230.0;
  return params;
}

TEST(RefreshModel, RowCount) {
  const RefreshCost cost = ComputeRefreshCost(HbmStack24GiB());
  EXPECT_DOUBLE_EQ(cost.rows, 24.0 * 1024 * 1024);  // 24 GiB / 1 KiB rows
}

TEST(RefreshModel, RefreshRateScalesInverselyWithWindow) {
  RefreshModelParams params = HbmStack24GiB();
  const RefreshCost fast = ComputeRefreshCost(params);
  params.retention_window_s *= 2.0;
  const RefreshCost slow = ComputeRefreshCost(params);
  EXPECT_NEAR(fast.refreshes_per_second, 2.0 * slow.refreshes_per_second, 1.0);
  EXPECT_NEAR(fast.refresh_power_w, 2.0 * slow.refresh_power_w, 1e-9);
}

TEST(RefreshModel, PowerScalesWithCapacity) {
  RefreshModelParams params = HbmStack24GiB();
  const RefreshCost small = ComputeRefreshCost(params);
  params.capacity_bytes *= 4;
  const RefreshCost large = ComputeRefreshCost(params);
  EXPECT_NEAR(large.refresh_power_w, 4.0 * small.refresh_power_w, 1e-9);
}

TEST(RefreshModel, HbmStackRefreshPowerIsNonTrivial) {
  // Order-of-magnitude check: a 24 GiB stack at 32 ms windows burns real
  // power on refresh alone — the §2.1 "consuming power even when idle".
  const RefreshCost cost = ComputeRefreshCost(HbmStack24GiB());
  EXPECT_GT(cost.refresh_power_w, 0.05);
  EXPECT_LT(cost.refresh_power_w, 5.0);
}

TEST(RefreshModel, EnergyPerDayConsistent) {
  const RefreshCost cost = ComputeRefreshCost(HbmStack24GiB());
  EXPECT_NEAR(cost.energy_per_day_j, cost.refresh_power_w * 86400.0, 1e-6);
}

TEST(RefreshModel, IdleFractionWithoutBackgroundIsOne) {
  const RefreshCost cost = ComputeRefreshCost(HbmStack24GiB());
  EXPECT_DOUBLE_EQ(cost.refresh_fraction_of_idle, 1.0);
}

TEST(RefreshModel, IdleFractionWithBackground) {
  RefreshModelParams params = HbmStack24GiB();
  const double refresh_w = ComputeRefreshCost(params).refresh_power_w;
  params.background_power_w = refresh_w;  // equal split
  const RefreshCost cost = ComputeRefreshCost(params);
  EXPECT_NEAR(cost.refresh_fraction_of_idle, 0.5, 1e-9);
}

TEST(RefreshModel, ZeroCapacityCostsNothing) {
  RefreshModelParams params = HbmStack24GiB();
  params.capacity_bytes = 0;
  const RefreshCost cost = ComputeRefreshCost(params);
  EXPECT_EQ(cost.refresh_power_w, 0.0);
  EXPECT_EQ(cost.refresh_fraction_of_idle, 0.0);
}

}  // namespace
}  // namespace cell
}  // namespace mrm
