#include "src/cell/technology.h"

#include <gtest/gtest.h>

#include <set>

namespace mrm {
namespace cell {
namespace {

TEST(Technology, AllProfilesPresent) {
  const auto profiles = AllTechnologyProfiles();
  EXPECT_GE(profiles.size(), 8u);
  std::set<Technology> seen;
  for (const auto& profile : profiles) {
    EXPECT_TRUE(seen.insert(profile.tech).second) << "duplicate profile " << profile.name;
    EXPECT_FALSE(profile.name.empty());
  }
}

TEST(Technology, LookupMatchesRegistry) {
  for (const auto& profile : AllTechnologyProfiles()) {
    const TechnologyProfile& looked_up = GetTechnologyProfile(profile.tech);
    EXPECT_EQ(looked_up.name, profile.name);
  }
}

TEST(Technology, NamesNonEmpty) {
  for (Technology tech :
       {Technology::kDram, Technology::kHbm, Technology::kLpddr, Technology::kSttMram,
        Technology::kRram, Technology::kPcm, Technology::kNandSlc, Technology::kNandTlc,
        Technology::kNorFlash}) {
    EXPECT_GT(std::string(TechnologyName(tech)).size(), 0u);
  }
}

TEST(Technology, DramClassNeedsRefreshAndHasShortRetention) {
  for (Technology tech : {Technology::kDram, Technology::kHbm, Technology::kLpddr}) {
    const TechnologyProfile& profile = GetTechnologyProfile(tech);
    EXPECT_TRUE(profile.needs_refresh) << profile.name;
    EXPECT_LT(profile.retention_s, 1.0) << profile.name;
    EXPECT_FALSE(profile.retention_programmable) << profile.name;
  }
}

TEST(Technology, ScmClassIsRetentionProgrammable) {
  for (Technology tech : {Technology::kSttMram, Technology::kRram, Technology::kPcm}) {
    const TechnologyProfile& profile = GetTechnologyProfile(tech);
    EXPECT_TRUE(profile.retention_programmable) << profile.name;
    EXPECT_FALSE(profile.needs_refresh) << profile.name;
    // Long native retention (10+ years).
    EXPECT_GE(profile.retention_s, 5.0 * 365 * 86400) << profile.name;
  }
}

TEST(Technology, FlashNeedsErase) {
  EXPECT_TRUE(GetTechnologyProfile(Technology::kNandSlc).needs_erase);
  EXPECT_TRUE(GetTechnologyProfile(Technology::kNandTlc).needs_erase);
  EXPECT_TRUE(GetTechnologyProfile(Technology::kNorFlash).needs_erase);
  EXPECT_FALSE(GetTechnologyProfile(Technology::kHbm).needs_erase);
}

TEST(Technology, EnduranceOrderingMatchesPaperFigure1) {
  // Paper §3: DRAM/HBM >> SCM potentials >> SCM products >> NAND TLC.
  const double hbm = GetTechnologyProfile(Technology::kHbm).endurance.product_cycles;
  const double stt_product = GetTechnologyProfile(Technology::kSttMram).endurance.product_cycles;
  const double pcm_product = GetTechnologyProfile(Technology::kPcm).endurance.product_cycles;
  const double rram_product = GetTechnologyProfile(Technology::kRram).endurance.product_cycles;
  const double nand_tlc = GetTechnologyProfile(Technology::kNandTlc).endurance.product_cycles;

  EXPECT_GT(hbm, stt_product);
  EXPECT_GT(stt_product, pcm_product);
  EXPECT_GT(pcm_product, rram_product);
  EXPECT_GT(rram_product, nand_tlc);
}

TEST(Technology, PotentialAlwaysAtLeastProduct) {
  for (const auto& profile : AllTechnologyProfiles()) {
    EXPECT_GE(profile.endurance.potential_cycles, profile.endurance.product_cycles)
        << profile.name;
  }
}

TEST(Technology, ScmReadEnergyOnParOrBetterThanDram) {
  // Paper §3: "PCM, RRAM, and STT-MRAM have read performance and energy on
  // par or better than DRAM".
  const double dram_read = GetTechnologyProfile(Technology::kDram).read_energy_pj_per_bit;
  EXPECT_LE(GetTechnologyProfile(Technology::kSttMram).read_energy_pj_per_bit, dram_read);
  EXPECT_LE(GetTechnologyProfile(Technology::kRram).read_energy_pj_per_bit, dram_read);
  EXPECT_LE(GetTechnologyProfile(Technology::kPcm).read_energy_pj_per_bit, dram_read);
}

TEST(Technology, FlashReadLatencyOrdersOfMagnitudeWorse) {
  // Why flash cannot serve as AI-accelerator memory (§3).
  const double dram = GetTechnologyProfile(Technology::kDram).read_latency_ns;
  const double nand = GetTechnologyProfile(Technology::kNandSlc).read_latency_ns;
  EXPECT_GT(nand / dram, 100.0);
}

TEST(Technology, HbmIsCostliestPerBit) {
  const double hbm = GetTechnologyProfile(Technology::kHbm).relative_cost_per_bit;
  for (const auto& profile : AllTechnologyProfiles()) {
    if (profile.tech == Technology::kSttMram) {
      continue;  // MRAM today is a niche (expensive) embedded part
    }
    EXPECT_LE(profile.relative_cost_per_bit, hbm) << profile.name;
  }
}

}  // namespace
}  // namespace cell
}  // namespace mrm
