#include "src/cell/tradeoff.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "src/common/units.h"

namespace mrm {
namespace cell {
namespace {

constexpr double kTenYears = 10.0 * 365.0 * 86400.0;

class TradeoffParamTest : public ::testing::TestWithParam<Technology> {};

INSTANTIATE_TEST_SUITE_P(AllProgrammable, TradeoffParamTest,
                         ::testing::Values(Technology::kSttMram, Technology::kRram,
                                           Technology::kPcm),
                         [](const auto& param_info) {
                           std::string name = TechnologyName(param_info.param);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

TEST_P(TradeoffParamTest, FactoryBuilds) {
  auto tradeoff = MakeTradeoffFor(GetParam());
  ASSERT_TRUE(tradeoff.ok());
  EXPECT_EQ(tradeoff.value()->technology(), GetParam());
}

TEST_P(TradeoffParamTest, BoundsAreOrdered) {
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  EXPECT_GT(tradeoff->min_retention_s(), 0.0);
  EXPECT_LT(tradeoff->min_retention_s(), tradeoff->max_retention_s());
  // The reference (max) point is the 10-year non-volatile point.
  EXPECT_NEAR(tradeoff->max_retention_s(), kTenYears, kTenYears * 0.6);
}

TEST_P(TradeoffParamTest, WriteEnergyMonotoneInRetention) {
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  double previous = 0.0;
  for (double retention = tradeoff->min_retention_s() * 2.0;
       retention < tradeoff->max_retention_s(); retention *= 10.0) {
    const OperatingPoint point = tradeoff->AtRetention(retention);
    EXPECT_GE(point.write_energy_pj_per_bit, previous)
        << "retention " << retention;
    previous = point.write_energy_pj_per_bit;
  }
}

TEST_P(TradeoffParamTest, WriteLatencyMonotoneInRetention) {
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  double previous = 0.0;
  for (double retention = tradeoff->min_retention_s() * 2.0;
       retention < tradeoff->max_retention_s(); retention *= 10.0) {
    const OperatingPoint point = tradeoff->AtRetention(retention);
    EXPECT_GE(point.write_latency_ns, previous);
    previous = point.write_latency_ns;
  }
}

TEST_P(TradeoffParamTest, EnduranceImprovesWithRelaxedRetention) {
  // The paper's central mechanism: giving up retention buys endurance.
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  const OperatingPoint nonvolatile = tradeoff->AtRetention(tradeoff->max_retention_s());
  const OperatingPoint relaxed = tradeoff->AtRetention(kHour);
  EXPECT_GT(relaxed.endurance_cycles, nonvolatile.endurance_cycles);
  // At least an order of magnitude for an hours-scale target.
  EXPECT_GT(relaxed.endurance_cycles / nonvolatile.endurance_cycles, 10.0);
}

TEST_P(TradeoffParamTest, RelaxedWritesAreCheaper) {
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  const OperatingPoint nonvolatile = tradeoff->AtRetention(tradeoff->max_retention_s());
  const OperatingPoint relaxed = tradeoff->AtRetention(kHour);
  EXPECT_LT(relaxed.write_energy_pj_per_bit, nonvolatile.write_energy_pj_per_bit);
  EXPECT_LT(relaxed.write_latency_ns, nonvolatile.write_latency_ns);
}

TEST_P(TradeoffParamTest, ReadPathIndependentOfRetention) {
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  const OperatingPoint a = tradeoff->AtRetention(kHour);
  const OperatingPoint b = tradeoff->AtRetention(kDay * 30);
  EXPECT_DOUBLE_EQ(a.read_latency_ns, b.read_latency_ns);
  EXPECT_DOUBLE_EQ(a.read_energy_pj_per_bit, b.read_energy_pj_per_bit);
}

TEST_P(TradeoffParamTest, RetentionClampedToBounds) {
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  const OperatingPoint below = tradeoff->AtRetention(tradeoff->min_retention_s() / 100.0);
  EXPECT_DOUBLE_EQ(below.retention_s, tradeoff->min_retention_s());
  const OperatingPoint above = tradeoff->AtRetention(tradeoff->max_retention_s() * 100.0);
  EXPECT_DOUBLE_EQ(above.retention_s, tradeoff->max_retention_s());
}

TEST_P(TradeoffParamTest, AchievedRetentionCoversRequest) {
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  for (double retention : {60.0, kHour, kDay, 30.0 * kDay}) {
    const OperatingPoint point = tradeoff->AtRetention(retention);
    EXPECT_GE(point.retention_s, retention * 0.999);
  }
}

TEST_P(TradeoffParamTest, RberGrowsWithAge) {
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  const double retention = kDay;
  double previous = 0.0;
  for (double age = 0.0; age <= 3.0 * kDay; age += 0.5 * kDay) {
    const double rber = tradeoff->RberAtAge(retention, age);
    EXPECT_GE(rber, previous);
    previous = rber;
  }
}

TEST_P(TradeoffParamTest, RberCalibratedAtRetention) {
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  const OperatingPoint point = tradeoff->AtRetention(kDay);
  const double rber = tradeoff->RberAtAge(kDay, point.retention_s);
  EXPECT_NEAR(rber, point.rber_at_retention, point.rber_at_retention * 0.05);
}

TEST_P(TradeoffParamTest, RberZeroAtAgeZeroAndBoundedAtInfinity) {
  auto tradeoff = MakeTradeoffFor(GetParam()).value();
  EXPECT_EQ(tradeoff->RberAtAge(kDay, 0.0), 0.0);
  EXPECT_LE(tradeoff->RberAtAge(kDay, kDay * 1e6), 0.5);
}

TEST(Tradeoff, SttMramDeltaMatchesTheory) {
  // Delta = ln(t / tau0): 10 years at tau0 = 1 ns gives delta ~ 40.
  SttMramParams params;
  auto tradeoff = MakeSttMramTradeoff(params);
  const double max_retention = tradeoff->max_retention_s();
  EXPECT_NEAR(std::log(max_retention / params.tau0_s), params.delta_ref, 1e-9);
}

TEST(Tradeoff, SttMramEnergyScalesWithDelta) {
  auto tradeoff = MakeSttMramTradeoff();
  // One-hour retention needs delta = ln(3600/1e-9) ~ 29, i.e. ~72% of the
  // 10-year write energy.
  const OperatingPoint point = tradeoff->AtRetention(3600.0);
  const double expected_scale = std::log(3600.0 / 1e-9) / 40.0;
  EXPECT_NEAR(point.write_energy_pj_per_bit / 2.5, expected_scale, 0.01);
}

TEST(Tradeoff, RramEnduranceCapRespected) {
  RramParams params;
  params.endurance_cap = 1e9;
  auto tradeoff = MakeRramTradeoff(params);
  const OperatingPoint point = tradeoff->AtRetention(tradeoff->min_retention_s());
  EXPECT_LE(point.endurance_cycles, 1e9 * 1.0001);
}

TEST(Tradeoff, PcmProductPointMatchesOptaneClass) {
  auto tradeoff = MakePcmTradeoff();
  const OperatingPoint point = tradeoff->AtRetention(tradeoff->max_retention_s());
  EXPECT_NEAR(point.endurance_cycles, 1e7, 1e7 * 0.01);
}

TEST(Tradeoff, NonProgrammableTechnologiesRejected) {
  EXPECT_FALSE(MakeTradeoffFor(Technology::kDram).ok());
  EXPECT_FALSE(MakeTradeoffFor(Technology::kHbm).ok());
  EXPECT_FALSE(MakeTradeoffFor(Technology::kNandSlc).ok());
  EXPECT_FALSE(MakeTradeoffFor(Technology::kNorFlash).ok());
}

}  // namespace
}  // namespace cell
}  // namespace mrm
