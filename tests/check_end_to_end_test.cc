// End-to-end audit wiring: attach the checkers to a real MemorySystem /
// MrmDevice run through the production hook sites.
//
// In a default build the hook sites compile away (kCheckedHooks == false), so
// these tests assert the observers see nothing; under -DMRMSIM_CHECKED=ON
// they assert a full closed-loop run issues thousands of commands with zero
// violations at 1 and 4 sim threads, and that an observed run's statistics
// are bit-identical to an unobserved one.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "src/check/mrm_checker.h"
#include "src/check/protocol_checker.h"
#include "src/common/check_hooks.h"
#include "src/mem/device_config.h"
#include "src/mem/memory_system.h"
#include "src/mrm/mrm_config.h"
#include "src/mrm/mrm_device.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace {

mem::DeviceConfig SmallConfig() {
  mem::DeviceConfig config = mem::DDR5Config();
  config.rows_per_bank = 1 << 10;  // keep the address space small
  return config;
}

// Mixed read/write closed loop over a deterministic LCG address stream.
// Returns the final stats; `observer` may be null.
mem::SystemStats RunClosedLoop(int threads, mem::CommandObserver* observer,
                               int epoch_batch = 1) {
  sim::Simulator sim;
  if (threads > 1) {
    sim.SetWorkerThreads(threads);
  }
  sim.SetEpochBatch(epoch_batch);
  mem::MemorySystem system(&sim, SmallConfig());
  system.SetCommandObserver(observer);

  const std::uint64_t line = system.config().access_bytes;
  const std::uint64_t lines = system.capacity_bytes() / line;
  std::uint64_t lcg = 12345;
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };

  constexpr int kTotal = 4000;
  int issued = 0;
  int completed = 0;
  std::function<void()> issue = [&]() {
    ++issued;
    mem::Request request;
    request.kind = next() % 100 < 60 ? mem::Request::Kind::kRead : mem::Request::Kind::kWrite;
    request.addr = (next() % lines) * line;
    request.size = static_cast<std::uint32_t>(line);
    request.on_complete = [&](const mem::Request&) {
      ++completed;
      if (issued < kTotal) {
        issue();
      }
    };
    system.Enqueue(std::move(request));
  };
  for (int i = 0; i < 32; ++i) {
    issue();
  }
  sim.Run();
  EXPECT_EQ(completed, kTotal);
  EXPECT_TRUE(system.Idle());
  return system.GetStats();
}

TEST(CheckEndToEnd, ClosedLoopRunIsAuditClean) {
  for (const int threads : {1, 4}) {
    check::ProtocolChecker checker(SmallConfig(), 1e9);
    RunClosedLoop(threads, &checker);
    if (kCheckedHooks) {
      EXPECT_GT(checker.commands_observed(), 1000u) << "threads=" << threads;
      EXPECT_EQ(checker.violation_count(), 0u)
          << "threads=" << threads << "\n"
          << checker.Report();
    } else {
      EXPECT_EQ(checker.commands_observed(), 0u)
          << "hook sites must compile away in unchecked builds";
    }
  }
}

TEST(CheckEndToEnd, EpochBatchingStaysAuditCleanAndBitIdentical) {
  // The epoch-invariant hooks must hold under epoch batching: a batched run
  // executes the same epoch schedule, so the auditor sees the same command
  // stream and the stats match an unbatched run bit for bit.
  const mem::SystemStats base = RunClosedLoop(1, nullptr, /*epoch_batch=*/1);
  for (const int threads : {1, 4}) {
    check::ProtocolChecker checker(SmallConfig(), 1e9);
    const mem::SystemStats batched = RunClosedLoop(threads, &checker, /*epoch_batch=*/16);
    EXPECT_TRUE(base == batched) << "threads=" << threads << " epoch_batch=16";
    if (kCheckedHooks) {
      EXPECT_GT(checker.commands_observed(), 1000u) << "threads=" << threads;
      EXPECT_EQ(checker.violation_count(), 0u)
          << "threads=" << threads << "\n"
          << checker.Report();
    }
  }
}

TEST(CheckEndToEnd, ObservedRunStatsAreBitIdentical) {
  check::ProtocolChecker checker(SmallConfig(), 1e9);
  const mem::SystemStats observed = RunClosedLoop(1, &checker);
  const mem::SystemStats unobserved = RunClosedLoop(1, nullptr);
  EXPECT_TRUE(observed == unobserved)
      << "attaching the auditor changed the simulation's statistics";
}

TEST(CheckEndToEnd, MrmDeviceRunIsAuditClean) {
  sim::Simulator sim;
  mrmcore::MrmDeviceConfig config;
  config.zones = 8;
  config.zone_blocks = 16;
  config.block_bytes = 4096;
  mrmcore::MrmDevice device(&sim, config);
  check::MrmChecker checker(config, &device.tradeoff());
  device.SetObserver(&checker);

  // Two full zone cycles: open, fill, read back, reset, refill.
  std::uint32_t completions = 0;
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (std::uint32_t zone = 0; zone < config.zones; ++zone) {
      if (cycle > 0) {
        ASSERT_TRUE(device.ResetZone(zone).ok());
      }
      ASSERT_TRUE(device.OpenZone(zone).ok());
      for (std::uint32_t b = 0; b < config.zone_blocks; ++b) {
        auto appended = device.AppendBlock(zone, 3600.0, [&](mrmcore::BlockId) { ++completions; });
        ASSERT_TRUE(appended.ok()) << appended.status().message();
      }
    }
    sim.Run();
    for (std::uint64_t block = 0; block < config.total_blocks(); block += 3) {
      ASSERT_TRUE(device.ReadBlock(block, [&](bool ok) {
                    EXPECT_TRUE(ok);
                    ++completions;
                  }).ok());
    }
    sim.Run();
  }
  EXPECT_GT(completions, 0u);

  if (kCheckedHooks) {
    EXPECT_GT(checker.events_observed(), 2u * config.zones * config.zone_blocks);
    EXPECT_EQ(checker.violation_count(), 0u) << checker.Report();
  } else {
    EXPECT_EQ(checker.events_observed(), 0u)
        << "hook sites must compile away in unchecked builds";
  }
}

}  // namespace
}  // namespace mrm
