// Fault conservation auditor: every injected fault must receive exactly one
// terminal disposition (DESIGN.md §10).

#include "src/check/fault_checker.h"

#include <gtest/gtest.h>

#include <string>

#include "src/check/attach.h"
#include "src/common/check_hooks.h"
#include "src/fault/fault_config.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_observer.h"

namespace mrm {
namespace check {
namespace {

using fault::FaultKind;
using fault::FaultRecord;
using fault::FaultResolution;
using fault::ResolutionRecord;

FaultRecord Fault(FaultKind kind, std::uint64_t entity) { return FaultRecord{kind, entity}; }

ResolutionRecord Resolution(FaultKind kind, FaultResolution resolution, std::uint64_t entity) {
  return ResolutionRecord{kind, resolution, entity};
}

TEST(FaultCheckerTest, BalancedLedgerHasNoViolations) {
  FaultChecker checker;
  checker.OnFault(Fault(FaultKind::kReadUncorrectable, 7));
  checker.OnFault(Fault(FaultKind::kZoneFailure, 3));
  checker.OnResolution(
      Resolution(FaultKind::kReadUncorrectable, FaultResolution::kRetryCorrected, 7));
  checker.OnResolution(Resolution(FaultKind::kZoneFailure, FaultResolution::kZoneRetired, 3));
  checker.Finalize();
  EXPECT_EQ(checker.faults_observed(), 2u);
  EXPECT_EQ(checker.resolutions_observed(), 2u);
  EXPECT_EQ(checker.unresolved_count(), 0u);
  EXPECT_EQ(checker.violation_count(), 0u);
}

TEST(FaultCheckerTest, RepeatedFaultsOnOneEntityNeedMatchingResolutions) {
  FaultChecker checker;
  // Three uncorrectable decodes of the same block (a retry storm) need three
  // terminal dispositions, not one.
  for (int i = 0; i < 3; ++i) {
    checker.OnFault(Fault(FaultKind::kReadUncorrectable, 11));
  }
  checker.OnResolution(
      Resolution(FaultKind::kReadUncorrectable, FaultResolution::kEmergencyScrub, 11));
  EXPECT_EQ(checker.unresolved_count(), 2u);
  checker.Finalize();
  EXPECT_EQ(checker.violation_count(), 1u);  // one ledger entry left open
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].kind, ViolationKind::kFaultUnresolved);
}

TEST(FaultCheckerTest, UnmatchedResolutionIsAViolation) {
  FaultChecker checker;
  checker.OnResolution(Resolution(FaultKind::kReadUncorrectable, FaultResolution::kDropped, 5));
  EXPECT_EQ(checker.violation_count(), 1u);
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].kind, ViolationKind::kFaultUnmatched);
  // The diagnostic names the resolution, the kind and the entity.
  EXPECT_NE(checker.violations()[0].message.find("dropped"), std::string::npos);
  EXPECT_NE(checker.violations()[0].message.find("5"), std::string::npos);
}

TEST(FaultCheckerTest, DoubleResolutionIsAViolation) {
  FaultChecker checker;
  checker.OnFault(Fault(FaultKind::kChannelStall, 9));
  checker.OnResolution(Resolution(FaultKind::kChannelStall, FaultResolution::kDelivered, 9));
  EXPECT_EQ(checker.violation_count(), 0u);
  checker.OnResolution(Resolution(FaultKind::kChannelStall, FaultResolution::kDelivered, 9));
  EXPECT_EQ(checker.violation_count(), 1u);
  EXPECT_EQ(checker.violations()[0].kind, ViolationKind::kFaultUnmatched);
}

TEST(FaultCheckerTest, KindAndEntityMustBothMatch) {
  FaultChecker checker;
  checker.OnFault(Fault(FaultKind::kStuckBlock, 4));
  // Same entity, wrong kind: not a match.
  checker.OnResolution(Resolution(FaultKind::kReadUncorrectable, FaultResolution::kReported, 4));
  EXPECT_EQ(checker.violation_count(), 1u);
  checker.Finalize();
  EXPECT_EQ(checker.violation_count(), 2u);  // the stuck fault is still open
}

TEST(FaultCheckerTest, FinalizeReportsEachOpenEntry) {
  FaultChecker checker;
  checker.OnFault(Fault(FaultKind::kZoneFailure, 1));
  checker.OnFault(Fault(FaultKind::kDroppedCompletion, 2));
  checker.Finalize();
  EXPECT_EQ(checker.violation_count(), 2u);
  const std::string report = checker.Report();
  EXPECT_NE(report.find("zone-failure"), std::string::npos);
  EXPECT_NE(report.find("dropped-completion"), std::string::npos);
  EXPECT_NE(report.find("never resolved"), std::string::npos);
}

TEST(FaultCheckerTest, ViolationListIsCapped) {
  FaultChecker checker;
  for (std::uint64_t entity = 0; entity < 2 * FaultChecker::kMaxViolations; ++entity) {
    checker.OnResolution(
        Resolution(FaultKind::kReadUncorrectable, FaultResolution::kDropped, entity));
  }
  EXPECT_EQ(checker.violation_count(), 2 * FaultChecker::kMaxViolations);
  EXPECT_EQ(checker.violations().size(), FaultChecker::kMaxViolations);
}

TEST(FaultCheckerTest, ObservesInjectorWhenHooksCompiledIn) {
  // End to end through the real injector. The hook sites only exist in
  // MRMSIM_CHECKED builds; elsewhere the observer must see nothing.
  fault::FaultConfig config;
  config.transient_rber = 1e-3;
  config.silent_fraction = 0.0;
  fault::FaultInjector injector(config);
  FaultChecker checker;
  injector.SetObserver(&checker);
  // Certain uncorrectable, then an emergency-scrub resolution.
  ASSERT_EQ(injector.RollRead(21, 0, 1.0, 1.0), fault::FaultInjector::ReadRoll::kUncorrectable);
  injector.ResolveRead(21, FaultResolution::kEmergencyScrub);
  // Certain corrected: terminal at injection, auto-resolved.
  ASSERT_EQ(injector.RollRead(21, 1, 0.0, 1.0), fault::FaultInjector::ReadRoll::kCorrected);
  injector.SetObserver(nullptr);
  checker.Finalize();
  if (kCheckedHooks) {
    EXPECT_EQ(checker.faults_observed(), 2u);
    EXPECT_EQ(checker.resolutions_observed(), 2u);
    EXPECT_EQ(checker.violation_count(), 0u);
  } else {
    EXPECT_EQ(checker.events_observed(), 0u);
  }
}

TEST(FaultCheckerTest, ScopedAttachmentIsActiveExactlyWhenHooksExist) {
  fault::FaultConfig config;
  config.transient_rber = 1e-4;
  fault::FaultInjector injector(config);
  {
    ScopedFaultChecker scoped(&injector, /*force=*/true);
    EXPECT_EQ(scoped.active(), kCheckedHooks);
    if (scoped.active()) {
      // A balanced inject/resolve pair keeps the dtor's conservation check
      // (which aborts on violations) green.
      injector.RollRead(2, 0, 1.0, 1.0);
      injector.ResolveRead(2, FaultResolution::kDropped);
      EXPECT_GE(scoped.checker()->faults_observed(), 1u);
    }
  }
  // Attaching to a null injector is a no-op, never a crash.
  ScopedFaultChecker null_scope(nullptr, /*force=*/true);
  EXPECT_FALSE(null_scope.active());
}

}  // namespace
}  // namespace check
}  // namespace mrm
