// Mutation tests for the MRM invariant auditor: drive MrmChecker with
// hand-built observer records and verify that the managed-retention contract
// violations are caught with diagnostics naming the broken invariant.

#include "src/check/mrm_checker.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/cell/tradeoff.h"
#include "src/check/violation.h"
#include "src/mrm/dcm.h"
#include "src/mrm/mrm_config.h"

namespace mrm {
namespace check {
namespace {

mrmcore::MrmDeviceConfig TestConfig() {
  mrmcore::MrmDeviceConfig config;
  config.name = "mrm-checker-test";
  config.zones = 4;
  config.zone_blocks = 2;
  return config;
}

class MrmCheckerTest : public testing::Test {
 protected:
  MrmCheckerTest()
      : config_(TestConfig()),
        tradeoff_(cell::MakeSttMramTradeoff()),
        checker_(config_, tradeoff_.get()) {}

  // A legal append record for block `index` of `zone`, as the device would
  // emit it: block id and write pointer derived from the zone geometry,
  // programmed retention from the trade-off model.
  mrmcore::MrmAppendRecord Append(std::uint32_t zone, std::uint32_t index,
                                  std::uint32_t wear_after, double now_s,
                                  double requested_retention_s = 3600.0) {
    mrmcore::MrmAppendRecord record;
    record.zone = zone;
    record.block = static_cast<std::uint64_t>(zone) * config_.zone_blocks + index;
    record.write_pointer_after = index + 1;
    record.requested_retention_s = requested_retention_s;
    record.programmed_retention_s = tradeoff_->AtRetention(requested_retention_s).retention_s;
    record.wear_after = wear_after;
    record.now_s = now_s;
    return record;
  }

  mrmcore::MrmReadRecord Read(const mrmcore::MrmAppendRecord& append, double now_s,
                              bool alive_claimed) {
    mrmcore::MrmReadRecord record;
    record.block = append.block;
    record.alive_claimed = alive_claimed;
    record.written_at_s = append.now_s;
    record.retention_s = append.programmed_retention_s;
    record.now_s = now_s;
    return record;
  }

  testing::AssertionResult CaughtAs(ViolationKind kind) {
    const std::string name = ViolationName(kind);
    for (const Violation& v : checker_.violations()) {
      if (v.kind != kind) {
        continue;
      }
      if (v.message.rfind(name + ":", 0) != 0) {
        return testing::AssertionFailure()
               << "violation recorded but its diagnostic does not name '" << name
               << "': " << v.message;
      }
      return testing::AssertionSuccess();
    }
    auto failure = testing::AssertionFailure() << "no '" << name << "' violation recorded; got "
                                               << checker_.violation_count() << ":";
    for (const Violation& v : checker_.violations()) {
      failure << "\n  " << v.message;
    }
    return failure;
  }

  mrmcore::MrmDeviceConfig config_;
  std::unique_ptr<cell::RetentionTradeoff> tradeoff_;
  MrmChecker checker_;
};

TEST_F(MrmCheckerTest, AcceptsLegalLifecycle) {
  checker_.OnZoneOpen(0);
  const auto first = Append(0, 0, 1, 10.0);
  checker_.OnAppend(first);
  checker_.OnAppend(Append(0, 1, 1, 20.0));  // zone is now full
  checker_.OnRead(Read(first, 15.0, /*alive_claimed=*/true));
  checker_.OnZoneReset(0);
  checker_.OnZoneOpen(0);
  checker_.OnAppend(Append(0, 0, 2, 30.0));  // wear carries across the reset
  EXPECT_EQ(checker_.events_observed(), 7u);
  EXPECT_EQ(checker_.violation_count(), 0u) << checker_.Report();
}

TEST_F(MrmCheckerTest, CatchesAppendToUnopenedZone) {
  checker_.OnAppend(Append(1, 0, 1, 10.0));
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kZoneLifecycle));
}

TEST_F(MrmCheckerTest, CatchesDoubleOpen) {
  checker_.OnZoneOpen(0);
  checker_.OnZoneOpen(0);
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kZoneLifecycle));
}

TEST_F(MrmCheckerTest, CatchesResetOfRetiredZone) {
  checker_.OnZoneRetire(2);
  checker_.OnZoneReset(2);
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kZoneLifecycle));
}

TEST_F(MrmCheckerTest, CatchesWritePointerSkip) {
  checker_.OnZoneOpen(0);
  checker_.OnAppend(Append(0, 1, 1, 10.0));  // skips index 0
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kWritePointer));
}

TEST_F(MrmCheckerTest, CatchesWearJump) {
  checker_.OnZoneOpen(0);
  checker_.OnAppend(Append(0, 0, 5, 10.0));  // fresh cells must report wear 1
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kWearAccounting));
}

TEST_F(MrmCheckerTest, CatchesWearErasedByZoneReset) {
  checker_.OnZoneOpen(0);
  checker_.OnAppend(Append(0, 0, 1, 10.0));
  checker_.OnAppend(Append(0, 1, 1, 11.0));
  checker_.OnZoneReset(0);
  checker_.OnZoneOpen(0);
  // There is no erase in MRM: a device that restarts wear at 1 after a reset
  // is hiding cell aging from the endurance accounting.
  checker_.OnAppend(Append(0, 0, 1, 20.0));
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kWearAccounting));
}

TEST_F(MrmCheckerTest, CatchesAppendPastEndurance) {
  // A trade-off model with an endurance of exactly 2 cycles at the reference
  // (max-retention) point, so the third append to the same block is illegal.
  cell::SttMramParams params;
  params.endurance_ref = 2.0;
  auto tiny = cell::MakeSttMramTradeoff(params);
  MrmChecker checker(config_, tiny.get());
  const double retention = tiny->max_retention_s();

  auto append = [&](std::uint32_t index, std::uint32_t wear_after, double now_s) {
    mrmcore::MrmAppendRecord record;
    record.zone = 0;
    record.block = index;
    record.write_pointer_after = index + 1;
    record.requested_retention_s = retention;
    record.programmed_retention_s = tiny->AtRetention(retention).retention_s;
    record.wear_after = wear_after;
    record.now_s = now_s;
    return record;
  };

  for (std::uint32_t cycle = 1; cycle <= 2; ++cycle) {
    checker.OnZoneOpen(0);
    checker.OnAppend(append(0, cycle, 10.0 * cycle));
    checker.OnAppend(append(1, cycle, 10.0 * cycle + 1.0));
    checker.OnZoneReset(0);
  }
  EXPECT_EQ(checker.violation_count(), 0u) << checker.Report();

  checker.OnZoneOpen(0);
  checker.OnAppend(append(0, 3, 30.0));  // wear 3 > endurance 2
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();

  bool found = false;
  for (const Violation& v : checker.violations()) {
    if (v.kind == ViolationKind::kEndurance) {
      EXPECT_EQ(v.message.rfind("endurance:", 0), 0u) << v.message;
      found = true;
    }
  }
  EXPECT_TRUE(found) << checker.Report();
}

TEST_F(MrmCheckerTest, CatchesProgrammedRetentionOffModel) {
  checker_.OnZoneOpen(0);
  auto record = Append(0, 0, 1, 10.0);
  record.programmed_retention_s *= 2.0;  // claims more than the pulse buys
  checker_.OnAppend(record);
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kRetentionClaim));
}

TEST_F(MrmCheckerTest, CatchesAliveClaimPastRetention) {
  checker_.OnZoneOpen(0);
  const auto append = Append(0, 0, 1, 10.0);
  checker_.OnAppend(append);
  // Read far past the programmed deadline but still claimed alive.
  checker_.OnRead(Read(append, 10.0 + append.programmed_retention_s * 2.0, true));
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kRetentionClaim));
}

TEST_F(MrmCheckerTest, CatchesExpiredClaimWithinRetention) {
  checker_.OnZoneOpen(0);
  const auto append = Append(0, 0, 1, 10.0);
  checker_.OnAppend(append);
  checker_.OnRead(Read(append, 11.0, /*alive_claimed=*/false));
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kRetentionClaim));
}

TEST_F(MrmCheckerTest, CatchesReadMetadataMismatch) {
  checker_.OnZoneOpen(0);
  const auto append = Append(0, 0, 1, 10.0);
  checker_.OnAppend(append);
  auto read = Read(append, 15.0, true);
  read.written_at_s = 12.0;  // device lies about the write time
  checker_.OnRead(read);
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kRetentionClaim));
}

TEST_F(MrmCheckerTest, CatchesReadOfNeverWrittenBlock) {
  mrmcore::MrmReadRecord record;
  record.block = 7;
  record.alive_claimed = true;
  record.now_s = 5.0;
  checker_.OnRead(record);
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kZoneLifecycle));
}

TEST_F(MrmCheckerTest, CatchesReadOfBlockErasedByReset) {
  checker_.OnZoneOpen(0);
  const auto append = Append(0, 0, 1, 10.0);
  checker_.OnAppend(append);
  checker_.OnZoneReset(0);
  checker_.OnRead(Read(append, 15.0, true));  // data is gone after the reset
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kZoneLifecycle));
}

// --- Policy audit (DESIGN.md §14) -------------------------------------------

TEST_F(MrmCheckerTest, AcceptsRetentionMatchingTheDeclaredPolicy) {
  checker_.DeclarePolicy(mrmcore::MakeDcmPolicy(/*margin=*/1.25, /*floor_s=*/120.0));
  mrmcore::MrmPolicyRecord record;
  record.lifetime_s = 600.0;
  record.retention_s = 750.0;  // max(600, 120) * 1.25
  record.now_s = 10.0;
  checker_.OnPolicyRetention(record);
  record.lifetime_s = 10.0;
  record.retention_s = 150.0;  // floored
  checker_.OnPolicyRetention(record);
  EXPECT_EQ(checker_.events_observed(), 2u);
  EXPECT_EQ(checker_.violation_count(), 0u) << checker_.Report();
}

TEST_F(MrmCheckerTest, CatchesOffPolicyRetention) {
  // The plane claims to run a 1.25-margin DCM but programs some other
  // retention — the exact drift a silently mis-lowered policy would show.
  checker_.DeclarePolicy(mrmcore::MakeDcmPolicy(1.25, 120.0));
  mrmcore::MrmPolicyRecord record;
  record.lifetime_s = 600.0;
  record.retention_s = 600.0;  // margin silently dropped
  record.now_s = 10.0;
  checker_.OnPolicyRetention(record);
  EXPECT_EQ(checker_.violation_count(), 1u) << checker_.Report();
  EXPECT_TRUE(CaughtAs(ViolationKind::kPolicyRetention));
}

TEST_F(MrmCheckerTest, UndeclaredPolicyRecordsAreObservedNotJudged) {
  // Without DeclarePolicy the checker has no reference; records count as
  // events (the audit summary shows traffic) but cannot violate.
  mrmcore::MrmPolicyRecord record;
  record.lifetime_s = 5.0;
  record.retention_s = 1.0e9;
  checker_.OnPolicyRetention(record);
  EXPECT_EQ(checker_.events_observed(), 1u);
  EXPECT_EQ(checker_.violation_count(), 0u) << checker_.Report();
}

}  // namespace
}  // namespace check
}  // namespace mrm
