// Mutation tests for the protocol auditor: feed hand-built command streams
// to the ProtocolChecker and verify that a legal stream is accepted and that
// each seeded protocol violation is caught with a diagnostic naming the
// violated constraint. These run in every build — the checker's own logic is
// independent of the MRMSIM_CHECKED hook gating.

#include "src/check/protocol_checker.h"

#include <gtest/gtest.h>

#include <string>

#include "src/check/violation.h"
#include "src/mem/device_config.h"

namespace mrm {
namespace check {
namespace {

// At 1 GHz one tick is one nanosecond, so the integer timings below are also
// the checker's derived tick windows.
constexpr double kTicksPerSecond = 1e9;

constexpr sim::Tick kTrcd = 14;
constexpr sim::Tick kTrp = 14;
constexpr sim::Tick kTcas = 14;
constexpr sim::Tick kTcwl = 10;
constexpr sim::Tick kTras = 28;  // == tRCD + tCAS
constexpr sim::Tick kTrc = 42;   // == tRAS + tRP
constexpr sim::Tick kTrrd = 2;
constexpr sim::Tick kTccd = 2;
constexpr sim::Tick kTburst = 2;
constexpr sim::Tick kTfaw = 16;
constexpr sim::Tick kTwr = 12;
constexpr sim::Tick kTrtp = 6;
constexpr sim::Tick kTrfc = 100;
constexpr sim::Tick kTrefi = 500;
constexpr sim::Tick kWriteRecovery = kTcwl + kTburst + kTwr;

mem::DeviceConfig TestConfig(bool needs_refresh) {
  mem::DeviceConfig config = mem::HBM3Config();
  config.name = "checker-test";
  config.channels = 1;
  config.ranks = 1;
  config.bank_groups = 2;
  config.banks_per_group = 4;  // 8 banks: enough for a tFAW scenario
  config.timings.trcd_ns = static_cast<double>(kTrcd);
  config.timings.trp_ns = static_cast<double>(kTrp);
  config.timings.tcas_ns = static_cast<double>(kTcas);
  config.timings.tcwl_ns = static_cast<double>(kTcwl);
  config.timings.tras_ns = static_cast<double>(kTras);
  config.timings.trc_ns = static_cast<double>(kTrc);
  config.timings.trrd_ns = static_cast<double>(kTrrd);
  config.timings.tccd_ns = static_cast<double>(kTccd);
  config.timings.tburst_ns = static_cast<double>(kTburst);
  config.timings.tfaw_ns = static_cast<double>(kTfaw);
  config.timings.twr_ns = static_cast<double>(kTwr);
  config.timings.trtp_ns = static_cast<double>(kTrtp);
  config.timings.trfc_ns = static_cast<double>(kTrfc);
  config.timings.trefi_ns = static_cast<double>(kTrefi);
  config.fabric_latency_ns = 10.0;
  config.needs_refresh = needs_refresh;
  EXPECT_TRUE(config.Validate().ok());
  return config;
}

mem::CommandRecord Rec(mem::Command command, sim::Tick tick, int flat_bank, std::uint64_t row = 0,
                       int rank = 0) {
  mem::CommandRecord record;
  record.tick = tick;
  record.command = command;
  record.channel = 0;
  record.rank = rank;
  record.flat_bank = flat_bank;
  record.row = row;
  record.size = 64;
  return record;
}

// The seeded violation must be recorded AND its diagnostic must lead with the
// constraint's name, so a failing checked run names what was broken.
testing::AssertionResult CaughtAs(const ProtocolChecker& checker, ViolationKind kind) {
  const std::string name = ViolationName(kind);
  for (const Violation& v : checker.violations()) {
    if (v.kind != kind) {
      continue;
    }
    if (v.message.rfind(name + ":", 0) != 0) {
      return testing::AssertionFailure()
             << "violation recorded but its diagnostic does not name '" << name
             << "': " << v.message;
    }
    return testing::AssertionSuccess();
  }
  auto failure = testing::AssertionFailure()
                 << "no '" << name << "' violation recorded; got " << checker.violation_count()
                 << ":";
  for (const Violation& v : checker.violations()) {
    failure << "\n  " << v.message;
  }
  return failure;
}

TEST(ProtocolChecker, AcceptsLegalStream) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kRead, kTrcd, 0, 5));
  checker.OnCommand(Rec(mem::Command::kPrecharge, kTras, 0));
  checker.OnCommand(Rec(mem::Command::kActivate, kTras + kTrp, 0, 6));
  checker.OnCommand(Rec(mem::Command::kWrite, kTras + kTrp + kTrcd, 0, 6));
  EXPECT_EQ(checker.commands_observed(), 5u);
  EXPECT_EQ(checker.violation_count(), 0u) << checker.Report();
}

TEST(ProtocolChecker, CatchesReadBeforeTrcd) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kRead, kTrcd - 1, 0, 5));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTrcd));
}

TEST(ProtocolChecker, CatchesActivateBeforeTrp) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kPrecharge, kTras, 0));
  checker.OnCommand(Rec(mem::Command::kActivate, kTras + kTrp - 1, 0, 6));
  // tRC == tRAS + tRP here, so the early ACT breaks both windows.
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTrp));
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTrc));
}

TEST(ProtocolChecker, CatchesPrechargeBeforeTras) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kPrecharge, kTras - 1, 0));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTras));
}

TEST(ProtocolChecker, CatchesActivateBeforeTrcAlone) {
  // Stretch tRC past tRAS + tRP so the early second ACT violates only tRC.
  mem::DeviceConfig config = TestConfig(false);
  config.timings.trc_ns = 50.0;
  ProtocolChecker checker(config, kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kPrecharge, kTras, 0));
  checker.OnCommand(Rec(mem::Command::kActivate, kTras + kTrp + 1, 0, 6));  // 43 < tRC 50
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTrc));
}

TEST(ProtocolChecker, CatchesActivatePairBeforeTrrd) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kActivate, kTrrd - 1, 1, 5));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTrrd));
}

TEST(ProtocolChecker, CatchesFifthActivateInsideTfaw) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 1));
  checker.OnCommand(Rec(mem::Command::kActivate, 4, 1, 1));
  checker.OnCommand(Rec(mem::Command::kActivate, 8, 2, 1));
  checker.OnCommand(Rec(mem::Command::kActivate, 12, 3, 1));
  // tRRD-legal (12 + 2 <= 15) but the rolling-four window is 16 ticks.
  checker.OnCommand(Rec(mem::Command::kActivate, kTfaw - 1, 4, 1));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTfaw));
}

TEST(ProtocolChecker, CatchesColumnPairBeforeTccd) {
  // Widen tCCD beyond the burst so the early second RD breaks only tCCD,
  // not the data-bus check.
  mem::DeviceConfig config = TestConfig(false);
  config.timings.tccd_ns = 4.0;
  ProtocolChecker checker(config, kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kRead, kTrcd, 0, 5));
  checker.OnCommand(Rec(mem::Command::kRead, kTrcd + 3, 0, 5));  // needs +4
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTccd));
}

TEST(ProtocolChecker, CatchesDataBusOverlapAcrossBanks) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kActivate, 2, 1, 5));
  checker.OnCommand(Rec(mem::Command::kRead, 16, 0, 5));
  // Per-bank tCCD does not apply across banks; only the shared bus does.
  // First burst occupies [30, 32); this one would start at 31.
  checker.OnCommand(Rec(mem::Command::kRead, 17, 1, 5));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kDataBusOverlap));
}

TEST(ProtocolChecker, CatchesPrechargeInsideWriteRecovery) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kWrite, kTrcd, 0, 5));
  checker.OnCommand(Rec(mem::Command::kPrecharge, kTrcd + kWriteRecovery - 1, 0));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTwr));
}

TEST(ProtocolChecker, CatchesPrechargeBeforeTrtp) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kRead, kTras - 3, 0, 5));  // tRCD-legal
  checker.OnCommand(Rec(mem::Command::kPrecharge, kTras + 1, 0));  // tRAS-legal, tRTP not
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTrtp));
}

TEST(ProtocolChecker, CatchesRowMismatch) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 7));
  checker.OnCommand(Rec(mem::Command::kRead, kTrcd, 0, 8));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kRowMismatch));
}

TEST(ProtocolChecker, CatchesColumnAndPrechargeOnIdleBank) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kRead, 5, 0, 5));
  checker.OnCommand(Rec(mem::Command::kPrecharge, 40, 1));
  EXPECT_EQ(checker.violation_count(), 2u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kBankState));
}

TEST(ProtocolChecker, AcceptsLegalRefreshCadence) {
  ProtocolChecker checker(TestConfig(true), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kRefresh, kTrefi, mem::CommandRecord::kAllBanks));
  checker.OnCommand(Rec(mem::Command::kActivate, kTrefi + kTrfc, 0, 5));
  EXPECT_EQ(checker.violation_count(), 0u) << checker.Report();
}

TEST(ProtocolChecker, CatchesEarlyRefresh) {
  ProtocolChecker checker(TestConfig(true), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kRefresh, kTrefi - 1, mem::CommandRecord::kAllBanks));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kRefreshEarly));
}

TEST(ProtocolChecker, CatchesDataCommandWithRefreshOverdue) {
  ProtocolChecker checker(TestConfig(true), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, kTrefi, 0, 5));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kRefreshOverdue));
}

TEST(ProtocolChecker, RefreshOverdueNotReportedWhenRefreshDisabled) {
  ProtocolChecker checker(TestConfig(true), kTicksPerSecond);
  checker.OnRefreshDisabled(0);
  checker.OnCommand(Rec(mem::Command::kActivate, kTrefi * 3, 0, 5));
  EXPECT_EQ(checker.violation_count(), 0u) << checker.Report();
}

TEST(ProtocolChecker, CatchesActivateInsideTrfc) {
  ProtocolChecker checker(TestConfig(true), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kRefresh, kTrefi, mem::CommandRecord::kAllBanks));
  checker.OnCommand(Rec(mem::Command::kActivate, kTrefi + kTrfc - 1, 0, 5));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kTrfc));
}

TEST(ProtocolChecker, CatchesRefreshWithRowOpen) {
  ProtocolChecker checker(TestConfig(true), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 3));
  checker.OnCommand(Rec(mem::Command::kRefresh, kTrefi, mem::CommandRecord::kAllBanks));
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kBankState));
}

// --- Epoch-execution invariants (hub / lane hooks) -------------------------

TEST(ProtocolChecker, CatchesWrongFabricLatency) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnRouted(0, 100, 110);  // fabric_latency_ns = 10 -> 10 ticks: legal
  EXPECT_EQ(checker.violation_count(), 0u);
  checker.OnRouted(0, 120, 125);
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kEpochFabricLatency));
}

TEST(ProtocolChecker, CatchesRouteOrderRegression) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnRouted(0, 100, 110);
  checker.OnRouted(0, 90, 100);  // correct latency, but routed behind 110
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kEpochRouteOrder));
}

TEST(ProtocolChecker, CatchesAdmissionAtHorizon) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnArrivalAdmitted(0, 99, 100);
  EXPECT_EQ(checker.violation_count(), 0u);
  checker.OnArrivalAdmitted(0, 100, 100);
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kEpochHorizon));
}

TEST(ProtocolChecker, CatchesAdmissionOrderRegression) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnArrivalAdmitted(0, 100, 1000);
  checker.OnArrivalAdmitted(0, 99, 1000);
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kEpochAdmitOrder));
}

TEST(ProtocolChecker, CatchesRecordAppliedOffItsEffectTick) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnRecordProcessed(0, 50, 1, 49);
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kEpochEffectTick));
}

TEST(ProtocolChecker, CatchesRecordOrderRegression) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnRecordProcessed(0, 50, 2, 50);
  checker.OnRecordProcessed(0, 50, 1, 50);  // same tick, id went backwards
  EXPECT_EQ(checker.violation_count(), 1u) << checker.Report();
  EXPECT_TRUE(CaughtAs(checker, ViolationKind::kEpochRecordOrder));
}

TEST(ProtocolChecker, ReportNamesViolationAndShowsHistory) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  checker.OnCommand(Rec(mem::Command::kActivate, 0, 0, 5));
  checker.OnCommand(Rec(mem::Command::kRead, kTrcd - 1, 0, 5));
  const std::string report = checker.Report();
  EXPECT_NE(report.find("tRCD"), std::string::npos) << report;
  EXPECT_NE(report.find("recent commands"), std::string::npos) << report;
  EXPECT_NE(report.find("ACT"), std::string::npos) << report;
}

TEST(ProtocolChecker, ViolationCapCountsButStopsRecording) {
  ProtocolChecker checker(TestConfig(false), kTicksPerSecond);
  const auto n = static_cast<sim::Tick>(ProtocolChecker::kMaxViolationsPerChannel + 8);
  for (sim::Tick i = 0; i < n; ++i) {
    // Each RD on an idle bank is one bank-state violation.
    checker.OnCommand(Rec(mem::Command::kRead, 1000 * (i + 1), 0, 5));
  }
  EXPECT_EQ(checker.violation_count(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(checker.violations().size(), ProtocolChecker::kMaxViolationsPerChannel);
}

}  // namespace
}  // namespace check
}  // namespace mrm
