// Checkpoint determinism and no-partial-restore tests (DESIGN.md §13).
//
// The core claim: save a running stack at a quiescent point T, restore it
// into a FRESH process-equivalent stack (new simulator, constructors have
// already scheduled their own events), run both to T+Δ, and every piece of
// simulation state — SystemStats, the RAS ledgers, zone/block metadata, the
// execution cursors — is bit-identical. For the memory fabric this must hold
// across --sim-threads 1/4 × speculation window 0/4096.
//
// The hostile half: a corrupted, truncated or mismatched snapshot is
// rejected by Load* with a named Error and the target stack is left exactly
// as it was — zero partial mutation.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/fault/fault_config.h"
#include "src/fault/fault_injector.h"
#include "src/mem/device_config.h"
#include "src/mem/memory_system.h"
#include "src/cell/tradeoff.h"
#include "src/mrm/control_plane.h"
#include "src/mrm/mrm_device.h"
#include "src/policy/memory_policy.h"
#include "src/sim/simulator.h"
#include "src/snapshot/checkpoint.h"
#include "src/snapshot/codec.h"
#include "src/snapshot/format.h"

namespace mrm {
namespace snapshot {
namespace {

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

constexpr std::uint64_t kFingerprint = 0x5eedf00d12345678ull;

// --- MRM stack fixture ------------------------------------------------------

mrmcore::MrmDeviceConfig StackDeviceConfig() {
  mrmcore::MrmDeviceConfig config;
  config.technology = cell::Technology::kSttMram;
  config.channels = 2;
  config.zones = 16;
  config.zone_blocks = 8;
  config.block_bytes = 4096;
  config.ecc_t = 8;
  config.ecc_codeword_bits = 4096;
  return config;
}

fault::FaultConfig StackFaultConfig() {
  fault::FaultConfig config;
  config.seed = 7;
  config.transient_rber = 1e-3;
  config.stuck_block_prob = 1e-3;
  config.stuck_wear_fraction = 0.0;
  config.zone_failure_prob = 1e-4;
  return config;
}

struct MrmStack {
  sim::Simulator simulator{1e9};
  mrmcore::MrmDevice device;
  mrmcore::ControlPlane plane;
  fault::FaultInjector injector;

  MrmStack()
      : device(&simulator, StackDeviceConfig()),
        plane(&simulator, &device,
              [] {
                mrmcore::ControlPlaneOptions options;
                options.scrub_period_s = 60.0;
                return options;
              }()),
        injector(StackFaultConfig()) {
    plane.SetFaultInjector(&injector);
  }
};

// Deterministic KV churn, checkpointable between batches. Batches run at a
// 5 s phase within each 10 s slot so they never share a tick with the scrub
// task (multiples of 60 s) or a save point (multiples of 10 s at phase 0).
struct Churn {
  std::uint64_t appends_ok = 0;
  std::uint64_t appends_failed = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_lost = 0;
  std::uint64_t cursor = 0;
  std::vector<std::pair<double, mrmcore::LogicalId>> live;
};

std::vector<std::uint8_t> EncodeChurn(const Churn& c) {
  Encoder enc;
  enc.PutU64(c.appends_ok);
  enc.PutU64(c.appends_failed);
  enc.PutU64(c.reads_ok);
  enc.PutU64(c.reads_lost);
  enc.PutU64(c.cursor);
  enc.PutU64(c.live.size());
  for (const auto& [expiry, id] : c.live) {
    enc.PutDouble(expiry);
    enc.PutU64(id);
  }
  return enc.TakeBytes();
}

bool DecodeChurn(const std::vector<std::uint8_t>& bytes, Churn* out) {
  Decoder dec(bytes.data(), bytes.size());
  out->appends_ok = dec.GetU64();
  out->appends_failed = dec.GetU64();
  out->reads_ok = dec.GetU64();
  out->reads_lost = dec.GetU64();
  out->cursor = dec.GetU64();
  const std::uint64_t n = dec.GetU64();
  if (!dec.ok() || n > dec.remaining() / 16) {
    return false;
  }
  out->live.resize(static_cast<std::size_t>(n));
  for (auto& [expiry, id] : out->live) {
    expiry = dec.GetDouble();
    id = dec.GetU64();
  }
  return dec.AtEnd();
}

void RunChurn(MrmStack* stack, Churn* churn, double from_s, double to_s) {
  for (double t = from_s + 5.0; t < to_s; t += 10.0) {
    stack->simulator.RunUntil(stack->simulator.SecondsToTicks(t));
    while (!churn->live.empty() && churn->live.front().first <= t) {
      if (stack->plane.Alive(churn->live.front().second)) {
        stack->plane.Free(churn->live.front().second);
      }
      churn->live.erase(churn->live.begin());
    }
    for (int i = 0; i < 6; ++i) {
      auto id = stack->plane.Append(/*lifetime_s=*/120.0);
      if (id.ok()) {
        churn->live.emplace_back(t + 120.0, id.value());
        ++churn->appends_ok;
      } else {
        ++churn->appends_failed;
      }
    }
    for (int i = 0; i < 8 && !churn->live.empty(); ++i) {
      churn->cursor = (churn->cursor + 1) % churn->live.size();
      const Status issued =
          stack->plane.Read(churn->live[churn->cursor].second, [churn](bool ok) {
            if (ok) {
              ++churn->reads_ok;
            } else {
              ++churn->reads_lost;
            }
          });
      if (!issued.ok()) {
        ++churn->reads_lost;
      }
    }
  }
  stack->simulator.RunUntil(stack->simulator.SecondsToTicks(to_s));
}

void ExpectPlaneStateEq(const mrmcore::ControlPlane::SavedState& a,
                        const mrmcore::ControlPlane::SavedState& b) {
  ASSERT_EQ(a.map.size(), b.map.size());
  for (std::size_t i = 0; i < a.map.size(); ++i) {
    EXPECT_EQ(a.map[i].id, b.map[i].id);
    EXPECT_EQ(a.map[i].tracked.phys, b.map[i].tracked.phys);
    EXPECT_EQ(a.map[i].tracked.zone, b.map[i].tracked.zone);
    EXPECT_EQ(a.map[i].tracked.expiry_s, b.map[i].tracked.expiry_s);
    EXPECT_EQ(a.map[i].tracked.deadline_s, b.map[i].tracked.deadline_s);
  }
  ASSERT_EQ(a.deadlines.size(), b.deadlines.size());
  for (std::size_t i = 0; i < a.deadlines.size(); ++i) {
    EXPECT_EQ(a.deadlines[i].deadline_s, b.deadlines[i].deadline_s) << "heap slot " << i;
    EXPECT_EQ(a.deadlines[i].id, b.deadlines[i].id) << "heap slot " << i;
    EXPECT_EQ(a.deadlines[i].phys, b.deadlines[i].phys) << "heap slot " << i;
  }
  EXPECT_EQ(a.zone_live, b.zone_live);
  EXPECT_EQ(a.zone_uncorrectable, b.zone_uncorrectable);
  EXPECT_EQ(a.open_zone, b.open_zone);
  EXPECT_EQ(a.has_open_zone, b.has_open_zone);
  EXPECT_EQ(a.next_id, b.next_id);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.scrub.next_fire, b.scrub.next_fire);
  EXPECT_EQ(a.scrub.sequence, b.scrub.sequence);
  EXPECT_EQ(a.scrub.period, b.scrub.period);
  EXPECT_EQ(a.scrub.fire_count, b.scrub.fire_count);
  EXPECT_EQ(a.scrub.running, b.scrub.running);
}

void ExpectStackEq(MrmStack* a, MrmStack* b, const Churn& churn_a, const Churn& churn_b) {
  EXPECT_EQ(a->simulator.now(), b->simulator.now());
  EXPECT_EQ(a->simulator.events_executed(), b->simulator.events_executed());
  EXPECT_EQ(a->simulator.next_event_sequence(), b->simulator.next_event_sequence());

  mrmcore::MrmDevice::SavedState dev_a;
  mrmcore::MrmDevice::SavedState dev_b;
  a->device.SaveState(&dev_a);
  b->device.SaveState(&dev_b);
  EXPECT_EQ(dev_a.zones, dev_b.zones);
  EXPECT_EQ(dev_a.blocks, dev_b.blocks);
  EXPECT_EQ(dev_a.stats, dev_b.stats);

  mrmcore::ControlPlane::SavedState plane_a;
  mrmcore::ControlPlane::SavedState plane_b;
  a->plane.SaveState(&plane_a);
  b->plane.SaveState(&plane_b);
  ExpectPlaneStateEq(plane_a, plane_b);

  EXPECT_EQ(a->injector.stats(), b->injector.stats());

  EXPECT_EQ(churn_a.appends_ok, churn_b.appends_ok);
  EXPECT_EQ(churn_a.appends_failed, churn_b.appends_failed);
  EXPECT_EQ(churn_a.reads_ok, churn_b.reads_ok);
  EXPECT_EQ(churn_a.reads_lost, churn_b.reads_lost);
  EXPECT_EQ(churn_a.live, churn_b.live);
}

TEST(MrmCheckpointTest, SaveRestoreContinueIsBitIdentical) {
  const std::string path = TempPath("mrm_stack.snap");

  // Reference: run to T, checkpoint, continue to T+Δ.
  MrmStack ref;
  Churn churn_ref;
  RunChurn(&ref, &churn_ref, 0.0, 130.0);  // past two scrub firings
  ASSERT_TRUE(SaveMrmStack(path, kFingerprint, ref.simulator, ref.device, ref.plane,
                           &ref.injector, EncodeChurn(churn_ref))
                  .ok());
  RunChurn(&ref, &churn_ref, 130.0, 250.0);

  // Restored: a fresh stack (its constructors scheduled their own scrub
  // event) resumes from disk and runs the same Δ.
  MrmStack restored;
  MrmStackState state;
  ASSERT_TRUE(LoadMrmStack(path, kFingerprint, restored.device, &state).ok());
  ApplyMrmStack(state, &restored.simulator, &restored.device, &restored.plane,
                &restored.injector);
  Churn churn_restored;
  ASSERT_TRUE(DecodeChurn(state.workload, &churn_restored));
  EXPECT_EQ(restored.simulator.now(), restored.simulator.SecondsToTicks(130.0));
  RunChurn(&restored, &churn_restored, 130.0, 250.0);

  ExpectStackEq(&ref, &restored, churn_ref, churn_restored);
  // The churn actually exercised the fault paths (otherwise this test would
  // pass vacuously on an idle stack).
  EXPECT_GT(churn_ref.appends_ok, 0u);
  EXPECT_GT(churn_ref.reads_ok, 0u);
  EXPECT_GT(ref.injector.stats().read_rolls, 0u);
}

TEST(MrmCheckpointTest, RestoredStackMatchesAtTheSavePointToo) {
  const std::string path = TempPath("mrm_stack_at_save.snap");
  MrmStack ref;
  Churn churn;
  RunChurn(&ref, &churn, 0.0, 70.0);
  ASSERT_TRUE(SaveMrmStack(path, kFingerprint, ref.simulator, ref.device, ref.plane,
                           &ref.injector, EncodeChurn(churn))
                  .ok());

  MrmStack restored;
  MrmStackState state;
  ASSERT_TRUE(LoadMrmStack(path, kFingerprint, restored.device, &state).ok());
  ApplyMrmStack(state, &restored.simulator, &restored.device, &restored.plane,
                &restored.injector);
  Churn churn_restored;
  ASSERT_TRUE(DecodeChurn(state.workload, &churn_restored));
  ExpectStackEq(&ref, &restored, churn, churn_restored);
}

TEST(MrmCheckpointTest, HostileSnapshotsAreRejectedWithoutMutation) {
  const std::string good_path = TempPath("mrm_hostile_good.snap");
  MrmStack ref;
  Churn churn;
  RunChurn(&ref, &churn, 0.0, 70.0);
  ASSERT_TRUE(SaveMrmStack(good_path, kFingerprint, ref.simulator, ref.device, ref.plane,
                           &ref.injector, EncodeChurn(churn))
                  .ok());

  // The victim stack Load* must never touch.
  MrmStack victim;
  Churn victim_churn;
  RunChurn(&victim, &victim_churn, 0.0, 30.0);
  mrmcore::MrmDevice::SavedState dev_before;
  mrmcore::ControlPlane::SavedState plane_before;
  victim.device.SaveState(&dev_before);
  victim.plane.SaveState(&plane_before);
  const sim::Tick now_before = victim.simulator.now();
  const std::uint64_t events_before = victim.simulator.events_executed();

  std::FILE* file = std::fopen(good_path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::vector<std::uint8_t> image;
  std::uint8_t buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    image.insert(image.end(), buffer, buffer + n);
  }
  std::fclose(file);

  const auto write_variant = [&](const std::vector<std::uint8_t>& bytes) {
    const std::string path = TempPath("mrm_hostile_variant.snap");
    std::FILE* out = std::fopen(path.c_str(), "wb");
    EXPECT_NE(out, nullptr);
    EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
    std::fclose(out);
    return path;
  };

  MrmStackState scratch;

  // Truncated mid-payload.
  {
    const auto path = write_variant(
        std::vector<std::uint8_t>(image.begin(), image.begin() + image.size() / 2));
    EXPECT_EQ(LoadMrmStack(path, kFingerprint, victim.device, &scratch).kind,
              ErrorKind::kTruncated);
  }
  // Bit flip in the body.
  {
    std::vector<std::uint8_t> mutated = image;
    mutated[mutated.size() - 10] ^= 0x20;
    const auto path = write_variant(mutated);
    EXPECT_EQ(LoadMrmStack(path, kFingerprint, victim.device, &scratch).kind,
              ErrorKind::kSectionCrc);
  }
  // Bit flip in the header.
  {
    std::vector<std::uint8_t> mutated = image;
    mutated[20] ^= 0x20;  // inside the fingerprint field
    const auto path = write_variant(mutated);
    EXPECT_EQ(LoadMrmStack(path, kFingerprint, victim.device, &scratch).kind,
              ErrorKind::kHeaderCrc);
  }
  // Wrong format version (with a recomputed, valid header CRC).
  {
    std::vector<std::uint8_t> mutated = image;
    mutated[8] = 99;
    std::size_t count = 0;
    for (int i = 0; i < 4; ++i) {
      count |= static_cast<std::size_t>(mutated[12 + i]) << (8 * i);
    }
    const std::size_t header_size = 24 + 24 * count;
    const std::uint32_t crc = Crc32(mutated.data(), header_size);
    for (int i = 0; i < 4; ++i) {
      mutated[header_size + i] = static_cast<std::uint8_t>(crc >> (8 * i));
    }
    const auto path = write_variant(mutated);
    EXPECT_EQ(LoadMrmStack(path, kFingerprint, victim.device, &scratch).kind,
              ErrorKind::kBadVersion);
  }
  // Mismatched config fingerprint.
  EXPECT_EQ(LoadMrmStack(good_path, kFingerprint ^ 0xF, victim.device, &scratch).kind,
            ErrorKind::kConfigMismatch);
  // Not a snapshot at all.
  {
    const auto path = write_variant({'j', 'u', 'n', 'k', 'f', 'i', 'l', 'e', 0, 0, 0, 0, 0, 0, 0,
                                     0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
    EXPECT_EQ(LoadMrmStack(path, kFingerprint, victim.device, &scratch).kind,
              ErrorKind::kBadMagic);
  }

  // Zero partial mutation: the victim is bit-identical to before the attempts.
  EXPECT_EQ(victim.simulator.now(), now_before);
  EXPECT_EQ(victim.simulator.events_executed(), events_before);
  mrmcore::MrmDevice::SavedState dev_after;
  mrmcore::ControlPlane::SavedState plane_after;
  victim.device.SaveState(&dev_after);
  victim.plane.SaveState(&plane_after);
  EXPECT_EQ(dev_before.zones, dev_after.zones);
  EXPECT_EQ(dev_before.blocks, dev_after.blocks);
  EXPECT_EQ(dev_before.stats, dev_after.stats);
  ExpectPlaneStateEq(plane_before, plane_after);

  // And the untouched victim can still continue and checkpoint normally.
  RunChurn(&victim, &victim_churn, 30.0, 50.0);
  const std::string victim_path = TempPath("mrm_hostile_victim.snap");
  EXPECT_TRUE(SaveMrmStack(victim_path, kFingerprint, victim.simulator, victim.device,
                           victim.plane, &victim.injector, EncodeChurn(victim_churn))
                  .ok());
}

// --- Memory fabric ----------------------------------------------------------

struct Fabric {
  sim::Simulator simulator{1e9};
  mem::MemorySystem system;

  Fabric(int threads, sim::Tick spec_window)
      : system(&simulator, mem::HBM3EConfig()) {
    simulator.SetWorkerThreads(threads);
    simulator.SetSpeculationWindow(spec_window);
  }
};

// One traffic phase: a bulk read and a bulk write through the fabric, run to
// completion (the post-Run instant is quiescent by construction).
void RunFabricPhase(Fabric* fabric, std::uint64_t base_addr) {
  int done = 0;
  fabric->system.Transfer(mem::Request::Kind::kRead, base_addr, 1 << 20, 0, [&done] { ++done; });
  fabric->system.Transfer(mem::Request::Kind::kWrite, base_addr + (8u << 20), 512 << 10, 1,
                          [&done] { ++done; });
  fabric->simulator.Run();
  ASSERT_EQ(done, 2);
}

TEST(FabricCheckpointTest, SaveRestoreContinueAcrossThreadsAndSpeculation) {
  // The same checkpoint must continue bit-identically at every execution
  // mode: serial, sharded, speculative, both.
  struct Mode {
    int threads;
    sim::Tick spec;
  };
  const Mode modes[] = {{1, 0}, {4, 0}, {1, 4096}, {4, 4096}};

  mem::SystemStats reference_stats;
  bool have_reference = false;
  for (const Mode& mode : modes) {
    SCOPED_TRACE("threads=" + std::to_string(mode.threads) +
                 " spec=" + std::to_string(mode.spec));
    const std::string path = TempPath("fabric.snap");

    Fabric ref(mode.threads, mode.spec);
    RunFabricPhase(&ref, 0);
    ASSERT_TRUE(SaveFabric(path, kFingerprint, ref.simulator, ref.system, nullptr).ok());
    RunFabricPhase(&ref, 16u << 20);
    const mem::SystemStats ref_stats = ref.system.GetStats();

    Fabric restored(mode.threads, mode.spec);
    FabricState state;
    ASSERT_TRUE(LoadFabric(path, kFingerprint, restored.system, &state).ok());
    ApplyFabric(state, &restored.simulator, &restored.system, nullptr);
    EXPECT_EQ(restored.simulator.now(), state.hub.now);
    RunFabricPhase(&restored, 16u << 20);

    EXPECT_EQ(restored.system.GetStats(), ref_stats);
    EXPECT_EQ(restored.system.LatestClock(), ref.system.LatestClock());
    EXPECT_EQ(restored.simulator.now(), ref.simulator.now());
    if (mode.spec == 0) {
      // Under speculation, rolled-back spans re-execute events, and how often
      // a lane speculates depends on the governor's cooldown history — which
      // is execution telemetry the snapshot deliberately excludes (it cannot
      // change simulation results, asserted above). Only without speculation
      // is the executed-event count itself simulation state.
      EXPECT_EQ(restored.simulator.events_executed(), ref.simulator.events_executed());
    }

    // Every mode's full-run stats must also agree with every other mode's.
    if (!have_reference) {
      reference_stats = ref_stats;
      have_reference = true;
    } else {
      EXPECT_EQ(ref_stats, reference_stats) << "execution mode changed the simulation";
    }
  }
}

TEST(FabricCheckpointTest, RestoreCrossesExecutionModes) {
  // A snapshot taken serially resumes on a speculative worker pool (and vice
  // versa) with identical results: execution mode is not simulation state.
  const std::string path = TempPath("fabric_cross.snap");

  Fabric serial(1, 0);
  RunFabricPhase(&serial, 0);
  ASSERT_TRUE(SaveFabric(path, kFingerprint, serial.simulator, serial.system, nullptr).ok());
  RunFabricPhase(&serial, 32u << 20);

  Fabric parallel(4, 4096);
  FabricState state;
  ASSERT_TRUE(LoadFabric(path, kFingerprint, parallel.system, &state).ok());
  ApplyFabric(state, &parallel.simulator, &parallel.system, nullptr);
  RunFabricPhase(&parallel, 32u << 20);

  EXPECT_EQ(parallel.system.GetStats(), serial.system.GetStats());
  EXPECT_EQ(parallel.system.LatestClock(), serial.system.LatestClock());
}

TEST(FabricCheckpointTest, HostileFabricSnapshotRejectedByName) {
  const std::string path = TempPath("fabric_hostile.snap");
  Fabric ref(1, 0);
  RunFabricPhase(&ref, 0);
  ASSERT_TRUE(SaveFabric(path, kFingerprint, ref.simulator, ref.system, nullptr).ok());

  Fabric victim(1, 0);
  FabricState scratch;
  EXPECT_EQ(LoadFabric(path, kFingerprint + 1, victim.system, &scratch).kind,
            ErrorKind::kConfigMismatch);
  EXPECT_EQ(LoadFabric(TempPath("fabric_nonexistent.snap"), kFingerprint, victim.system,
                       &scratch)
                .kind,
            ErrorKind::kIoError);

  // The victim still runs and saves cleanly after the rejected loads.
  RunFabricPhase(&victim, 0);
  const std::string victim_path = TempPath("fabric_hostile_victim.snap");
  EXPECT_TRUE(SaveFabric(victim_path, kFingerprint, victim.simulator, victim.system, nullptr)
                  .ok());

  // A geometry mismatch (snapshot from a different config that happens to
  // share a fingerprint) is caught by shape validation, not applied.
  sim::Simulator other_sim(1e9);
  mem::MemorySystem other(&other_sim, mem::DDR5Config());
  FabricState other_state;
  const Error err = LoadFabric(path, kFingerprint, other, &other_state);
  EXPECT_EQ(err.kind, ErrorKind::kMalformed);
}

// --- Policy-gated checkpoints (DESIGN.md §14) -------------------------------

// Seeds a run fingerprint with the non-policy config digest plus every
// MemoryPolicy parameter, the way the closed-loop driver stamps snapshots.
std::uint64_t PolicyFingerprint(const policy::MemoryPolicy& p) {
  Fingerprint fp;
  fp.MixU64(kFingerprint);
  p.Mix(&fp);
  return fp.digest();
}

// An MRM stack whose control plane is lowered from a MemoryPolicy.
struct PolicyStack {
  sim::Simulator simulator{1e9};
  mrmcore::MrmDevice device;
  mrmcore::ControlPlane plane;

  PolicyStack(const policy::MemoryPolicy& p, const cell::RetentionTradeoff& tradeoff)
      : device(&simulator, StackDeviceConfig()),
        plane(&simulator, &device, [&] {
          mrmcore::ControlPlaneOptions base;
          base.scrub_period_s = 60.0;
          return p.PlaneOptions(StackDeviceConfig(), tradeoff, base);
        }()) {}
};

TEST(MrmCheckpointTest, PolicyRetentionRoundTripsAndParamsGateRestore) {
  auto tradeoff = cell::MakeTradeoffFor(cell::Technology::kSttMram);
  ASSERT_TRUE(tradeoff.ok());
  policy::MemoryPolicy policy;  // default per-stream DCM classes
  ASSERT_TRUE(policy.Validate(2).ok());
  const std::uint64_t digest = PolicyFingerprint(policy);

  // Appends whose programmed retention comes from the policy's lifetime
  // dispatch: a KV-lifetime hint and a weight-lifetime hint land in
  // different classes and must carry different retentions.
  PolicyStack ref(policy, *tradeoff.value());
  ref.simulator.RunUntil(ref.simulator.SecondsToTicks(5.0));
  ASSERT_TRUE(ref.plane.Append(policy.kv_lifetime_hint_s).ok());
  ASSERT_TRUE(ref.plane.Append(policy.weight_lifetime_hint_s).ok());
  ref.simulator.RunUntil(ref.simulator.SecondsToTicks(10.0));

  const std::string path = TempPath("mrm_policy_stack.snap");
  ASSERT_TRUE(SaveMrmStack(path, digest, ref.simulator, ref.device, ref.plane,
                           /*injector=*/nullptr, /*workload=*/{})
                  .ok());

  // Same-policy restore: the policy-chosen retentions (expiry and scrub
  // deadline per block) round-trip bit-identically into a fresh stack.
  PolicyStack restored(policy, *tradeoff.value());
  MrmStackState state;
  ASSERT_TRUE(LoadMrmStack(path, digest, restored.device, &state).ok());
  ApplyMrmStack(state, &restored.simulator, &restored.device, &restored.plane,
                /*injector=*/nullptr);
  mrmcore::ControlPlane::SavedState saved_ref;
  mrmcore::ControlPlane::SavedState saved_restored;
  ref.plane.SaveState(&saved_ref);
  restored.plane.SaveState(&saved_restored);
  ExpectPlaneStateEq(saved_ref, saved_restored);
  ASSERT_EQ(saved_restored.map.size(), 2u);
  EXPECT_NE(saved_restored.map[0].tracked.expiry_s, saved_restored.map[1].tracked.expiry_s)
      << "lifetime dispatch collapsed: both appends carry the same retention";

  // A checkpoint taken under a different policy (one parameter changed) must
  // be rejected up front with the named config-mismatch diagnostic.
  policy::MemoryPolicy other = policy;
  other.kv.margin = 2.0;
  ASSERT_NE(PolicyFingerprint(other), digest);
  MrmStackState scratch;
  const Error mismatch = LoadMrmStack(path, PolicyFingerprint(other), restored.device, &scratch);
  EXPECT_EQ(mismatch.kind, ErrorKind::kConfigMismatch);
  EXPECT_NE(mismatch.ToString().find("config-mismatch"), std::string::npos)
      << mismatch.ToString();
}

}  // namespace
}  // namespace snapshot
}  // namespace mrm
