// Cross-validation of the two memory paths behind the unified backend
// interface: the cycle-level sim backend must land within 10% of the
// analytic roofline on the HBM calibration workload (Llama2-70B decode),
// and the full closed-loop serving run must agree on throughput.

#include <gtest/gtest.h>

#include "src/driver/sim_backend.h"
#include "src/tier/tier_spec.h"
#include "src/workload/inference_engine.h"

namespace mrm {
namespace {

using workload::StepBatch;
using workload::Stream;

constexpr int kDevices = 8;

workload::StepBatch DecodeBatch(const workload::FoundationModelConfig& model,
                                int batch, int context) {
  StepBatch step;
  step.Read(Stream::kWeights, model.weight_bytes());
  step.Read(Stream::kKvCache, static_cast<std::uint64_t>(batch) * context *
                                  model.kv_bytes_per_token());
  step.Write(Stream::kKvCache,
             static_cast<std::uint64_t>(batch) * model.kv_bytes_per_token());
  return step;
}

driver::SimBackendOptions CalibrationOptions() {
  driver::SimBackendOptions options;
  options.device = mem::HBM3EConfig();
  options.devices = kDevices;
  options.lower_scale = 8192;
  return options;
}

TEST(ClosedLoopValidation, DecodeStepWithinTenPercentOfAnalytic) {
  const workload::FoundationModelConfig model = workload::Llama2_70B();
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), kDevices);

  workload::AnalyticBackend analytic(hbm, model.weight_bytes());
  driver::SimBackend sim(CalibrationOptions(), model.weight_bytes());

  const StepBatch batch = DecodeBatch(model, /*batch=*/8, /*context=*/2048);
  const double analytic_s = analytic.SubmitStep(batch).seconds;
  const double sim_s = sim.SubmitStep(batch).seconds;
  ASSERT_GT(analytic_s, 0.0);
  ASSERT_GT(sim_s, 0.0);
  EXPECT_NEAR(sim_s, analytic_s, 0.10 * analytic_s)
      << "cycle-level decode step diverged from the analytic roofline";
}

TEST(ClosedLoopValidation, PrefillStepWithinTenPercentOfAnalytic) {
  const workload::FoundationModelConfig model = workload::Llama2_70B();
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), kDevices);

  workload::AnalyticBackend analytic(hbm, model.weight_bytes());
  driver::SimBackend sim(CalibrationOptions(), model.weight_bytes());

  // A prefill chunk: weight sweep + chunk-sized KV append + activations.
  StepBatch batch;
  batch.Read(Stream::kWeights, model.weight_bytes());
  batch.Write(Stream::kKvCache, 2048ull * model.kv_bytes_per_token());
  batch.Read(Stream::kActivations, 1ull << 30);
  batch.Write(Stream::kActivations, 1ull << 30);
  const double analytic_s = analytic.SubmitStep(batch).seconds;
  const double sim_s = sim.SubmitStep(batch).seconds;
  EXPECT_NEAR(sim_s, analytic_s, 0.10 * analytic_s);
}

TEST(ClosedLoopValidation, DynamicEnergyTracksAnalytic) {
  const workload::FoundationModelConfig model = workload::Llama2_70B();
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), kDevices);

  workload::AnalyticBackend analytic(hbm, model.weight_bytes());
  driver::SimBackend sim(CalibrationOptions(), model.weight_bytes());

  const StepBatch batch = DecodeBatch(model, /*batch=*/8, /*context=*/2048);
  const double analytic_j = analytic.SubmitStep(batch).energy_j;
  const double sim_j = sim.SubmitStep(batch).energy_j;
  ASSERT_GT(sim_j, 0.0);
  // Energy models differ in what they amortize (activate energy, IO); a
  // factor-of-two agreement pins gross unit errors without over-fitting.
  EXPECT_GT(sim_j, 0.5 * analytic_j);
  EXPECT_LT(sim_j, 2.0 * analytic_j);
}

TEST(ClosedLoopValidation, ServingRunAgreesOnThroughputShape) {
  const workload::FoundationModelConfig model = workload::Llama2_70B();
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), kDevices);

  auto run = [&](workload::MemoryBackend* backend) {
    workload::EngineConfig config;
    config.model = model;
    config.max_batch = 4;
    config.compute_tflops = 1000.0;
    workload::InferenceEngine engine(config, backend);
    std::vector<workload::InferenceRequest> requests;
    for (int i = 0; i < 4; ++i) {
      workload::InferenceRequest request;
      request.id = static_cast<std::uint64_t>(i + 1);
      request.prompt_tokens = 128;
      request.output_tokens = 16;
      requests.push_back(request);
    }
    return engine.Run(requests);
  };

  workload::AnalyticBackend analytic(hbm, model.weight_bytes());
  driver::SimBackend sim(CalibrationOptions(), model.weight_bytes());
  const workload::EngineSummary analytic_summary = run(&analytic);
  const workload::EngineSummary sim_summary = run(&sim);

  EXPECT_EQ(sim_summary.requests_completed, analytic_summary.requests_completed);
  EXPECT_EQ(sim_summary.decode_tokens, analytic_summary.decode_tokens);
  ASSERT_GT(analytic_summary.memory_seconds, 0.0);
  // A full serving run mixes in ramp-up steps whose transfers are too small
  // to amortize fixed device latencies (row activation, fabric hops) that
  // the analytic model ignores, so the whole-run tolerance is wider than the
  // 10% steady-state decode bound above.
  EXPECT_NEAR(sim_summary.memory_seconds, analytic_summary.memory_seconds,
              0.25 * analytic_summary.memory_seconds);
}

}  // namespace
}  // namespace mrm
