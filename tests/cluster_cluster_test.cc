#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace mrm {
namespace cluster {
namespace {

NodeModelConfig FastNode() {
  NodeModelConfig config;
  config.model = workload::Llama2_70B();
  config.compute_tflops = 1000.0;
  config.weight_read_bw_bytes_per_s = 4e12;
  config.kv_read_bw_bytes_per_s = 4e12;
  config.kv_write_bw_bytes_per_s = 4e12;
  return config;
}

ClusterConfig SmallCluster(ClusterMode mode) {
  ClusterConfig config;
  config.mode = mode;
  config.prefill_node = FastNode();
  config.decode_node = FastNode();
  config.prefill_nodes = 2;
  config.decode_nodes = 2;
  config.max_decode_batch = 8;
  config.interconnect_bw_bytes_per_s = 0.9e12;
  return config;
}

std::vector<workload::InferenceRequest> Burst(int count, int prompt, int output,
                                              double spacing_s = 0.0) {
  std::vector<workload::InferenceRequest> requests;
  for (int i = 0; i < count; ++i) {
    workload::InferenceRequest request;
    request.id = static_cast<std::uint64_t>(i + 1);
    request.arrival_s = spacing_s * i;
    request.prompt_tokens = prompt;
    request.output_tokens = output;
    requests.push_back(request);
  }
  return requests;
}

class ClusterModeTest : public ::testing::TestWithParam<ClusterMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, ClusterModeTest,
                         ::testing::Values(ClusterMode::kColocated,
                                           ClusterMode::kDisaggregated),
                         [](const auto& param_info) {
                           return param_info.param == ClusterMode::kColocated ? "Colocated"
                                                                        : "Disaggregated";
                         });

TEST_P(ClusterModeTest, DrainsAllRequests) {
  sim::Simulator simulator(1e9);
  Cluster cluster(&simulator, SmallCluster(GetParam()));
  for (const auto& request : Burst(12, 1024, 64, 0.2)) {
    cluster.Submit(request);
  }
  simulator.RunUntil(simulator.SecondsToTicks(3600.0));
  EXPECT_TRUE(cluster.Drained());
  EXPECT_EQ(cluster.stats().completed, 12u);
  EXPECT_EQ(cluster.stats().decode_tokens, 12u * 64);
}

TEST_P(ClusterModeTest, LatencyHistogramsPopulated) {
  sim::Simulator simulator(1e9);
  Cluster cluster(&simulator, SmallCluster(GetParam()));
  for (const auto& request : Burst(6, 512, 32, 0.5)) {
    cluster.Submit(request);
  }
  simulator.RunUntil(simulator.SecondsToTicks(3600.0));
  ASSERT_TRUE(cluster.Drained());
  EXPECT_EQ(cluster.stats().ttft_ms.count(), 6u);
  EXPECT_EQ(cluster.stats().e2e_s.count(), 6u);
  EXPECT_GT(cluster.stats().ttft_ms.mean(), 0.0);
  // E2E at least TTFT.
  EXPECT_GE(cluster.stats().e2e_s.mean() * 1e3, cluster.stats().ttft_ms.mean());
}

TEST_P(ClusterModeTest, ThroughputScalesWithDecodeNodes) {
  auto run_with_nodes = [&](int nodes) {
    sim::Simulator simulator(1e9);
    ClusterConfig config = SmallCluster(GetParam());
    config.decode_nodes = nodes;
    Cluster cluster(&simulator, config);
    // Saturating load.
    for (const auto& request : Burst(nodes * 16, 256, 128, 0.01)) {
      cluster.Submit(request);
    }
    simulator.RunUntil(simulator.SecondsToTicks(36000.0));
    EXPECT_TRUE(cluster.Drained());
    return cluster.stats().tokens_per_s();
  };
  const double two = run_with_nodes(2);
  const double four = run_with_nodes(4);
  EXPECT_GT(four, two * 1.4);
}

TEST(Cluster, DisaggregationShieldsTtftFromPrefillBursts) {
  // The Splitwise effect: in a colocated cluster a burst of long prompts
  // stalls ongoing decodes; a disaggregated cluster isolates them.
  auto run = [&](ClusterMode mode) {
    sim::Simulator simulator(1e9);
    ClusterConfig config = SmallCluster(mode);
    config.decode_nodes = 2;
    config.prefill_nodes = 2;
    Cluster cluster(&simulator, config);
    // Steady decodes plus a burst of very long prompts at t=1s.
    for (const auto& request : Burst(8, 128, 256, 0.25)) {
      cluster.Submit(request);
    }
    auto long_prompts = Burst(6, 16384, 16, 0.0);
    for (auto& request : long_prompts) {
      request.arrival_s = 1.0;
      request.id += 100;
      cluster.Submit(request);
    }
    simulator.RunUntil(simulator.SecondsToTicks(36000.0));
    EXPECT_TRUE(cluster.Drained());
    return cluster.stats().e2e_s.Quantile(0.5);
  };
  const double colocated = run(ClusterMode::kColocated);
  const double disaggregated = run(ClusterMode::kDisaggregated);
  EXPECT_LT(disaggregated, colocated);
}

TEST(Cluster, SharedMrmPoolBeatsInterconnectHandoff) {
  // interconnect_bw == 0 models a fabric-attached MRM KV pool: no transfer
  // cost between prefill and decode.
  auto run = [&](double interconnect_bw) {
    sim::Simulator simulator(1e9);
    ClusterConfig config = SmallCluster(ClusterMode::kDisaggregated);
    config.interconnect_bw_bytes_per_s = interconnect_bw;
    Cluster cluster(&simulator, config);
    for (const auto& request : Burst(10, 8192, 32, 0.1)) {
      cluster.Submit(request);
    }
    simulator.RunUntil(simulator.SecondsToTicks(36000.0));
    EXPECT_TRUE(cluster.Drained());
    return cluster.stats().ttft_ms.mean();
  };
  const double slow_link = run(50e9);    // 50 GB/s link
  const double fast_link = run(0.9e12);  // NVLink-class
  const double shared_pool = run(0.0);   // MRM pool, no transfer
  EXPECT_LT(fast_link, slow_link);
  EXPECT_LE(shared_pool, fast_link);
}

TEST(Cluster, QueueWaitGrowsUnderOverload) {
  auto run = [&](double spacing) {
    sim::Simulator simulator(1e9);
    ClusterConfig config = SmallCluster(ClusterMode::kDisaggregated);
    config.prefill_nodes = 1;
    Cluster cluster(&simulator, config);
    for (const auto& request : Burst(16, 8192, 8, spacing)) {
      cluster.Submit(request);
    }
    simulator.RunUntil(simulator.SecondsToTicks(36000.0));
    EXPECT_TRUE(cluster.Drained());
    return cluster.stats().queue_wait_ms.mean();
  };
  EXPECT_GT(run(0.0), run(10.0));
}

TEST(Cluster, EmptyClusterIsDrained) {
  sim::Simulator simulator(1e9);
  Cluster cluster(&simulator, SmallCluster(ClusterMode::kDisaggregated));
  simulator.Run();
  EXPECT_TRUE(cluster.Drained());
  EXPECT_EQ(cluster.stats().completed, 0u);
}

TEST(Cluster, BatchCapRespected) {
  // One decode node, batch cap 2, six simultaneous short requests: they
  // must trickle through (admission queue) yet all complete.
  sim::Simulator simulator(1e9);
  ClusterConfig config = SmallCluster(ClusterMode::kDisaggregated);
  config.decode_nodes = 1;
  config.max_decode_batch = 2;
  Cluster cluster(&simulator, config);
  for (const auto& request : Burst(6, 128, 64)) {
    cluster.Submit(request);
  }
  simulator.RunUntil(simulator.SecondsToTicks(36000.0));
  EXPECT_TRUE(cluster.Drained());
}

}  // namespace
}  // namespace cluster
}  // namespace mrm
