#include "src/cluster/node_model.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/driver/sim_backend.h"
#include "src/mem/device_config.h"
#include "src/tier/tier_spec.h"
#include "src/tier/tiered_backend.h"
#include "src/workload/inference_engine.h"

namespace mrm {
namespace cluster {
namespace {

NodeModelConfig TestNode() {
  NodeModelConfig config;
  config.model = workload::Llama2_70B();
  config.compute_tflops = 1000.0;
  config.weight_read_bw_bytes_per_s = 4e12;
  config.kv_read_bw_bytes_per_s = 4e12;
  config.kv_write_bw_bytes_per_s = 4e12;
  return config;
}

TEST(NodeModel, PrefillRatePositiveAndBounded) {
  const NodeModel model(TestNode());
  const double rate = model.PrefillTokensPerSecond();
  EXPECT_GT(rate, 100.0);
  // Cannot exceed the pure compute bound.
  const double compute_bound =
      TestNode().compute_tflops * 1e12 / (2.0 * 70e9);
  EXPECT_LE(rate, compute_bound * 1.001);
}

TEST(NodeModel, PrefillSecondsLinearInTokens) {
  const NodeModel model(TestNode());
  EXPECT_NEAR(model.PrefillSeconds(2000), 2.0 * model.PrefillSeconds(1000), 1e-9);
}

TEST(NodeModel, DecodeStepGrowsWithBatchCompute) {
  NodeModelConfig config = TestNode();
  config.compute_tflops = 1.0;  // firmly compute bound even at batch 1
  const NodeModel model(config);
  const double one = model.DecodeStepSeconds(1, 1e9);
  const double eight = model.DecodeStepSeconds(8, 1e9);
  EXPECT_NEAR(eight, 8.0 * one, one * 0.01);
}

TEST(NodeModel, DecodeStepFlatWithBatchWhenWeightBound) {
  NodeModelConfig config = TestNode();
  config.compute_tflops = 1e6;  // never compute bound
  const NodeModel model(config);
  // With small KV, the weight sweep dominates and batching is ~free.
  const double one = model.DecodeStepSeconds(1, 1e6);
  const double eight = model.DecodeStepSeconds(8, 1e6);
  EXPECT_NEAR(eight, one, one * 0.01);
}

TEST(NodeModel, DecodeStepGrowsWithKv) {
  NodeModelConfig config = TestNode();
  config.compute_tflops = 1e6;
  const NodeModel model(config);
  const double small = model.DecodeStepSeconds(8, 1e9);
  const double large = model.DecodeStepSeconds(8, 100e9);
  EXPECT_GT(large, small);
}

TEST(NodeModel, ThroughputImprovesWithBatchUntilComputeBound) {
  const NodeModel model(TestNode());
  const double b1 = model.DecodeTokensPerSecond(1, 1e9);
  const double b8 = model.DecodeTokensPerSecond(8, 1e9);
  EXPECT_GT(b8, b1 * 2.0);
}

TEST(NodeModel, AgreesWithTokenLevelEngineOnDecodeThroughput) {
  // The analytic node model and the step-by-step engine must agree on
  // decode throughput within ~25% for a steady batch.
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  const workload::FoundationModelConfig model = workload::Llama2_70B();

  workload::AnalyticBackend backend(hbm, model.weight_bytes());
  workload::EngineConfig engine_config;
  engine_config.model = model;
  engine_config.max_batch = 8;
  engine_config.compute_tflops = 1000.0;
  workload::InferenceEngine engine(engine_config, &backend);
  std::vector<workload::InferenceRequest> requests;
  for (int i = 0; i < 8; ++i) {
    workload::InferenceRequest request;
    request.id = static_cast<std::uint64_t>(i + 1);
    request.prompt_tokens = 1024;
    request.output_tokens = 256;
    requests.push_back(request);
  }
  const workload::EngineSummary summary = engine.Run(requests);

  // Engine serializes weight and KV streams on one tier; HbmNode mirrors
  // that with streams_share_tier = true (sum of per-stream times).
  NodeModelConfig node_config = HbmNode(model, hbm, 1000.0);
  const NodeModel node(node_config);
  const double mean_kv =
      static_cast<double>(model.kv_bytes_per_token()) * (1024.0 + 128.0);
  const double model_tps = node.DecodeTokensPerSecond(8, mean_kv);
  // Engine duration includes prefill; compare against its decode-phase rate:
  // decode steps dominate the run for 256-token outputs.
  EXPECT_NEAR(summary.decode_tokens_per_s() / model_tps, 1.0, 0.35);
}

TEST(NodeModel, HbmMrmBuilderUsesPerTierBandwidth) {
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 2);
  workload::TierSpec mrm;
  mrm.read_bw_bytes_per_s = 6e12;
  mrm.write_bw_bytes_per_s = 0.5e12;
  const NodeModelConfig config = HbmMrmNode(workload::Llama2_70B(), hbm, mrm, 1000.0);
  EXPECT_DOUBLE_EQ(config.weight_read_bw_bytes_per_s, 6e12);
  EXPECT_DOUBLE_EQ(config.kv_read_bw_bytes_per_s, hbm.read_bw_bytes_per_s);
  EXPECT_DOUBLE_EQ(config.kv_write_bw_bytes_per_s, 0.5e12);
}

TEST(NodeModel, CalibrateFromAnalyticBackendRecoversTierBandwidth) {
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  const workload::FoundationModelConfig model = workload::Llama2_70B();
  workload::AnalyticBackend backend(hbm, model.weight_bytes());
  const NodeModelConfig config = CalibrateNodeModel(model, &backend, 1000.0);
  EXPECT_NEAR(config.weight_read_bw_bytes_per_s, hbm.read_bw_bytes_per_s,
              0.01 * hbm.read_bw_bytes_per_s);
  EXPECT_NEAR(config.kv_read_bw_bytes_per_s, hbm.read_bw_bytes_per_s,
              0.01 * hbm.read_bw_bytes_per_s);
  EXPECT_NEAR(config.kv_write_bw_bytes_per_s, hbm.write_bw_bytes_per_s,
              0.01 * hbm.write_bw_bytes_per_s);
  // One tier, one bus: the combined probe must serialize.
  EXPECT_TRUE(config.streams_share_tier);
}

TEST(NodeModel, CalibrateFromTieredBackendDetectsOverlap) {
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  workload::TierSpec mrm;
  mrm.name = "mrm";
  mrm.read_bw_bytes_per_s = 4e12;
  mrm.write_bw_bytes_per_s = 0.2e12;
  const workload::FoundationModelConfig model = workload::Llama2_70B();
  tier::Placement placement;
  placement.weights_tier = 1;  // weights on MRM, KV stays on HBM
  tier::TieredBackend backend({hbm, mrm}, placement, model.weight_bytes());
  const NodeModelConfig config = CalibrateNodeModel(model, &backend, 1000.0);
  EXPECT_NEAR(config.weight_read_bw_bytes_per_s, 4e12, 0.01 * 4e12);
  EXPECT_NEAR(config.kv_read_bw_bytes_per_s, hbm.read_bw_bytes_per_s,
              0.01 * hbm.read_bw_bytes_per_s);
  // Separate tiers overlap: the combined probe costs ~max, not sum.
  EXPECT_FALSE(config.streams_share_tier);
}

TEST(NodeModel, CalibrateFromSimBackendTracksDeviceBandwidth) {
  const workload::FoundationModelConfig model = workload::Llama2_70B();
  driver::SimBackendOptions options;
  options.device = mem::HBM3EConfig();
  options.devices = 8;
  options.lower_scale = 8192;
  driver::SimBackend backend(options, model.weight_bytes());
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  const NodeModelConfig config = CalibrateNodeModel(model, &backend, 1000.0);
  EXPECT_NEAR(config.weight_read_bw_bytes_per_s, hbm.read_bw_bytes_per_s,
              0.2 * hbm.read_bw_bytes_per_s);
  EXPECT_TRUE(config.streams_share_tier);
  // The calibrated model is usable end to end.
  const NodeModel node(config);
  EXPECT_GT(node.PrefillTokensPerSecond(), 0.0);
}

TEST(NodeModel, InvalidConfigsRejected) {
  NodeModelConfig config = TestNode();
  config.weight_read_bw_bytes_per_s = 0.0;
  EXPECT_DEATH(NodeModel model(config), "weight_read_bw");
}

}  // namespace
}  // namespace cluster
}  // namespace mrm
