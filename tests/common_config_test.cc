#include "src/common/config.h"

#include <gtest/gtest.h>

namespace mrm {
namespace {

TEST(Config, ParsesBasicKeyValues) {
  auto result = Config::Parse("a = 1\nb.c = hello\n");
  ASSERT_TRUE(result.ok());
  const Config& config = result.value();
  EXPECT_EQ(config.GetInt("a"), 1);
  EXPECT_EQ(config.GetString("b.c"), "hello");
}

TEST(Config, CommentsAndBlankLines) {
  auto result = Config::Parse(
      "# full-line comment\n"
      "\n"
      "key = value  ; trailing comment\n"
      "other = 2 # hash comment\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().GetString("key"), "value");
  EXPECT_EQ(result.value().GetInt("other"), 2);
}

TEST(Config, MalformedLineIsError) {
  auto result = Config::Parse("this line has no equals\n");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().message().find("line 1"), std::string::npos);
}

TEST(Config, EmptyKeyIsError) {
  auto result = Config::Parse(" = value\n");
  EXPECT_FALSE(result.ok());
}

TEST(Config, LaterDuplicateWins) {
  auto result = Config::Parse("k = 1\nk = 2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().GetInt("k"), 2);
}

TEST(Config, DefaultsWhenMissing) {
  Config config;
  EXPECT_EQ(config.GetInt("missing", 42), 42);
  EXPECT_EQ(config.GetString("missing", "d"), "d");
  EXPECT_EQ(config.GetDouble("missing", 2.5), 2.5);
  EXPECT_TRUE(config.GetBool("missing", true));
  EXPECT_EQ(config.GetSize("missing", 7), 7u);
  EXPECT_EQ(config.GetDuration("missing", 1.5), 1.5);
}

TEST(Config, BoolParsing) {
  auto result = Config::Parse("a=true\nb=1\nc=yes\nd=on\ne=false\nf=0\n");
  ASSERT_TRUE(result.ok());
  const Config& config = result.value();
  EXPECT_TRUE(config.GetBool("a"));
  EXPECT_TRUE(config.GetBool("b"));
  EXPECT_TRUE(config.GetBool("c"));
  EXPECT_TRUE(config.GetBool("d"));
  EXPECT_FALSE(config.GetBool("e"));
  EXPECT_FALSE(config.GetBool("f"));
}

TEST(Config, SizeSuffixes) {
  EXPECT_EQ(Config::ParseSize("64").value(), 64u);
  EXPECT_EQ(Config::ParseSize("1KiB").value(), 1024u);
  EXPECT_EQ(Config::ParseSize("2 MiB").value(), 2u * 1024 * 1024);
  EXPECT_EQ(Config::ParseSize("1GiB").value(), 1024ull * 1024 * 1024);
  EXPECT_EQ(Config::ParseSize("1TiB").value(), 1024ull * 1024 * 1024 * 1024);
  EXPECT_EQ(Config::ParseSize("1KB").value(), 1000u);
  EXPECT_EQ(Config::ParseSize("1.5GB").value(), 1500000000u);
  EXPECT_EQ(Config::ParseSize("2TB").value(), 2000000000000u);
}

TEST(Config, SizeErrors) {
  EXPECT_FALSE(Config::ParseSize("abc").ok());
  EXPECT_FALSE(Config::ParseSize("12XB").ok());
  EXPECT_FALSE(Config::ParseSize("-5KiB").ok());
  EXPECT_FALSE(Config::ParseSize("").ok());
}

TEST(Config, DurationSuffixes) {
  EXPECT_DOUBLE_EQ(Config::ParseDuration("10").value(), 10.0);
  EXPECT_DOUBLE_EQ(Config::ParseDuration("10s").value(), 10.0);
  EXPECT_DOUBLE_EQ(Config::ParseDuration("5ms").value(), 0.005);
  EXPECT_DOUBLE_EQ(Config::ParseDuration("2us").value(), 2e-6);
  EXPECT_DOUBLE_EQ(Config::ParseDuration("3ns").value(), 3e-9);
  EXPECT_DOUBLE_EQ(Config::ParseDuration("2m").value(), 120.0);
  EXPECT_DOUBLE_EQ(Config::ParseDuration("1h").value(), 3600.0);
  EXPECT_DOUBLE_EQ(Config::ParseDuration("1d").value(), 86400.0);
  EXPECT_DOUBLE_EQ(Config::ParseDuration("1y").value(), 86400.0 * 365);
}

TEST(Config, DurationErrors) {
  EXPECT_FALSE(Config::ParseDuration("fast").ok());
  EXPECT_FALSE(Config::ParseDuration("5 parsecs").ok());
}

TEST(Config, GetSizeAndDurationFromEntries) {
  auto result = Config::Parse("mem = 16GiB\ntimeout = 250ms\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().GetSize("mem"), 16ull * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(result.value().GetDuration("timeout"), 0.25);
}

TEST(Config, UntouchedKeysDetectsTypos) {
  auto result = Config::Parse("used = 1\nunused.typo = 2\n");
  ASSERT_TRUE(result.ok());
  const Config& config = result.value();
  config.GetInt("used");
  const auto untouched = config.UntouchedKeys();
  ASSERT_EQ(untouched.size(), 1u);
  EXPECT_EQ(untouched[0], "unused.typo");
}

TEST(Config, ItemsSortedByKey) {
  auto result = Config::Parse("b = 2\na = 1\n");
  ASSERT_TRUE(result.ok());
  const auto items = result.value().Items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, "a");
  EXPECT_EQ(items[1].first, "b");
}

TEST(Config, FromFileMissingIsError) {
  auto result = Config::FromFile("/nonexistent/path/config.txt");
  EXPECT_FALSE(result.ok());
}

TEST(Config, HexIntegers) {
  auto result = Config::Parse("addr = 0x40\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().GetInt("addr"), 0x40);
}

}  // namespace
}  // namespace mrm
