#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace mrm {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(original);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_STREQ(LogLevelName(LogLevel::kFatal), "FATAL");
}

TEST(Logging, BelowThresholdDoesNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  MRM_LOG(Debug) << "suppressed " << 42;
  MRM_LOG(Info) << "also suppressed";
  SetLogLevel(original);
}

TEST(Logging, CheckPassesSilently) {
  MRM_CHECK(1 + 1 == 2) << "never shown";
}

TEST(LoggingDeath, FatalAborts) {
  EXPECT_DEATH(MRM_LOG(Fatal) << "boom", "boom");
}

TEST(LoggingDeath, FailedCheckAborts) {
  EXPECT_DEATH(MRM_CHECK(false) << "context", "check failed: false");
}

}  // namespace
}  // namespace mrm
