#include "src/common/result.h"

#include <gtest/gtest.h>

#include <string>

namespace mrm {
namespace {

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return Error("not positive");
  }
  return x;
}

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.message(), "");
}

TEST(Status, ErrorCarriesMessage) {
  Status status = Error("boom");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "boom");
  EXPECT_EQ(status.error().message(), "boom");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Error("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message(), "bad");
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.status().message(), "bad");
}

TEST(Result, ValueOr) {
  EXPECT_EQ(ParsePositive(5).value_or(-1), 5);
  EXPECT_EQ(ParsePositive(-5).value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(Result, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 9);
}

TEST(Result, MutableValueReference) {
  Result<int> r = 1;
  r.value() = 2;
  EXPECT_EQ(r.value(), 2);
}

TEST(Error, Equality) {
  EXPECT_EQ(Error("x"), Error("x"));
  EXPECT_FALSE(Error("x") == Error("y"));
}

}  // namespace
}  // namespace mrm
