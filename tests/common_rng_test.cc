#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace mrm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBoundedRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedZeroReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Rng, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBound)];
  }
  const double expected = static_cast<double>(kSamples) / kBound;
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], expected, 5.0 * std::sqrt(expected)) << "value " << v;
  }
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(5);
  const double lambda = 4.0;
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.Exponential(lambda);
  }
  EXPECT_NEAR(sum / kSamples, 1.0 / lambda, 0.01);
}

TEST(Rng, NormalHasCorrectMoments) {
  Rng rng(9);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.Normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(13);
  constexpr int kSamples = 100001;
  std::vector<double> samples(kSamples);
  const double mu = std::log(1000.0);
  for (auto& s : samples) {
    s = rng.Lognormal(mu, 0.8);
  }
  std::nth_element(samples.begin(), samples.begin() + kSamples / 2, samples.end());
  EXPECT_NEAR(samples[kSamples / 2], 1000.0, 30.0);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(17);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.Poisson(3.5));
  }
  EXPECT_NEAR(sum / kSamples, 3.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(19);
  constexpr int kSamples = 50000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.Poisson(200.0));
  }
  EXPECT_NEAR(sum / kSamples, 200.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(23);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
  EXPECT_EQ(rng.Poisson(-1.0), 0u);
}

TEST(Rng, ZipfInRange) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Zipf(100, 1.0), 100u);
  }
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(31);
  constexpr int kSamples = 50000;
  int rank0 = 0;
  int rank_high = 0;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t r = rng.Zipf(1000, 1.0);
    if (r == 0) {
      ++rank0;
    }
    if (r >= 500) {
      ++rank_high;
    }
  }
  // Rank 0 should be by far the most popular single rank.
  EXPECT_GT(rank0, kSamples / 20);
  // The whole top half [500, 1000) should get less than rank 0 alone.
  EXPECT_LT(rank_high, rank0 * 2);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(37);
  constexpr int kSamples = 100000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.Zipf(4, 0.0)];
  }
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, kSamples / 4.0, 600.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The child must differ from a same-seed sibling of the parent.
  Rng parent2(41);
  parent2.NextU64();  // advance equally to the Fork() consumption
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.NextU64() == parent2.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBoolEdgeCases) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, NextBoolProbability) {
  Rng rng(47);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.3, 0.01);
}

}  // namespace
}  // namespace mrm
