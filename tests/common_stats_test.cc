#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace mrm {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
  EXPECT_EQ(stats.sum(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(StreamingStats, KnownSequence) {
  StreamingStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(StreamingStats, NegativeValues) {
  StreamingStats stats;
  stats.Add(-3.0);
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.min(), -3.0);
  EXPECT_EQ(stats.max(), 3.0);
}

TEST(StreamingStats, MergeMatchesCombinedStream) {
  Rng rng(1);
  StreamingStats all;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Normal(7.0, 2.0);
    all.Add(x);
    (i % 3 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a;
  a.Add(1.0);
  StreamingStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(StreamingStats, ResetClears) {
  StreamingStats stats;
  stats.Add(10.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Add(100.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.Quantile(0.5), 100.0, 100.0 / 16.0);
  EXPECT_EQ(h.min(), 100.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_EQ(h.mean(), 100.0);
}

TEST(Histogram, QuantilesOfUniformData) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) {
    h.Add(static_cast<double>(i));
  }
  // Log-bucketed: relative error bounded by 1/16 per decade position.
  EXPECT_NEAR(h.Quantile(0.5), 5000.0, 5000.0 * 0.08);
  EXPECT_NEAR(h.Quantile(0.9), 9000.0, 9000.0 * 0.08);
  EXPECT_NEAR(h.Quantile(0.99), 9900.0, 9900.0 * 0.08);
  EXPECT_EQ(h.Quantile(1.0), 10000.0);
}

TEST(Histogram, QuantileMonotoneInQ) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    h.Add(rng.Lognormal(5.0, 2.0));
  }
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(Histogram, SubUnitValuesLandInUnderflow) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Add(0.25);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.Quantile(0.99), 1.0);
}

TEST(Histogram, NegativeClampedToZero) {
  Histogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(Histogram, MergeMatchesUnion) {
  Histogram a;
  Histogram b;
  Histogram all;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Lognormal(4.0, 1.5);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), all.Quantile(0.5));
  EXPECT_DOUBLE_EQ(a.Quantile(0.99), all.Quantile(0.99));
  EXPECT_EQ(a.max(), all.max());
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Add(7.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(Histogram, HugeValuesDoNotOverflow) {
  Histogram h;
  h.Add(1e300);
  h.Add(1.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 1e300);
  EXPECT_GE(h.Quantile(1.0), 1.0);
}

TEST(Histogram, SummaryContainsCount) {
  Histogram h;
  h.Add(2.0);
  h.Add(4.0);
  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("n=2"), std::string::npos);
  EXPECT_NE(summary.find("p50"), std::string::npos);
}

// The deterministic-aggregation contract the sharded memory system relies
// on (DESIGN.md §8): merging per-channel histograms in a fixed order must be
// exactly the histogram of the combined stream — not approximately.

TEST(HistogramMerge, MergeWithEmptyIsExactIdentity) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Add(static_cast<double>(1 + i * 37 % 5000));
  }
  const Histogram before = h;
  h.Merge(Histogram{});
  EXPECT_TRUE(h == before);

  Histogram empty;
  empty.Merge(before);
  EXPECT_TRUE(empty == before);
}

TEST(HistogramMerge, BucketAlignmentAcrossMagnitudes) {
  // The same value must land in the same bucket whichever histogram counted
  // it: state after merge equals state after adding everything directly.
  // Covers the underflow bucket (< 1), bucket boundaries, and huge values.
  const double values[] = {0.0,    0.25,   0.999, 1.0,   1.0625, 2.0,  15.0, 16.0,
                           17.0,   100.0,  1e3,   1e6,   1e12,   1e300};
  Histogram direct;
  Histogram a;
  Histogram b;
  int i = 0;
  for (const double v : values) {
    direct.Add(v);
    ((i++ % 2) == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_TRUE(a == direct);
}

TEST(HistogramMerge, MergeOrderInvariantOnExactValues) {
  // Integer-valued samples keep the running sum exact in a double, so the
  // merge is associative and commutative bit-for-bit: any merge order gives
  // the same state. (The memory system still merges channels in a fixed
  // order so non-integer sums stay deterministic too.)
  Histogram parts[3];
  Histogram direct;
  Rng rng(11);
  for (int n = 0; n < 3000; ++n) {
    const double v = static_cast<double>(rng.NextBounded(1000000));
    parts[n % 3].Add(v);
    direct.Add(v);
  }

  Histogram forward = parts[0];  // (p0 + p1) + p2
  forward.Merge(parts[1]);
  forward.Merge(parts[2]);

  Histogram backward = parts[2];  // (p2 + p1) + p0
  backward.Merge(parts[1]);
  backward.Merge(parts[0]);

  Histogram nested = parts[1];  // p1 + (p2 + p0)
  Histogram tail = parts[2];
  tail.Merge(parts[0]);
  nested.Merge(tail);

  EXPECT_TRUE(forward == direct);
  EXPECT_TRUE(backward == direct);
  EXPECT_TRUE(nested == direct);
}

}  // namespace
}  // namespace mrm
