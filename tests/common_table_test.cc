#include "src/common/table.h"

#include <gtest/gtest.h>

namespace mrm {
namespace {

TEST(FormatBytes, Plain) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(FormatBytes(1024), "1.00 KiB");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(1024ull * 1024), "1.00 MiB");
  EXPECT_EQ(FormatBytes(3ull * 1024 * 1024 * 1024), "3.00 GiB");
  EXPECT_EQ(FormatBytes(2ull * 1024 * 1024 * 1024 * 1024), "2.00 TiB");
}

TEST(FormatNumber, UsesCompactNotation) {
  EXPECT_EQ(FormatNumber(1.0), "1");
  EXPECT_EQ(FormatNumber(1234.0), "1234");
  EXPECT_EQ(FormatNumber(1.58e8), "1.58e+08");
}

TEST(FormatSeconds, AdaptiveUnits) {
  EXPECT_EQ(FormatSeconds(5e-9), "5 ns");
  EXPECT_EQ(FormatSeconds(2e-6), "2 us");
  EXPECT_EQ(FormatSeconds(0.5), "500 ms");
  EXPECT_EQ(FormatSeconds(30.0), "30 s");
  EXPECT_EQ(FormatSeconds(7200.0), "2 h");
  EXPECT_EQ(FormatSeconds(86400.0 * 3), "3 d");
  EXPECT_EQ(FormatSeconds(86400.0 * 365 * 5), "5 y");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.ToString();
  // Header present, separator present, rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Each line ends with newline; 4 lines total.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only-one"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.ToString().find("only-one"), std::string::npos);
}

TEST(TablePrinter, CsvEscaping) {
  TablePrinter table({"k", "v"});
  table.AddRow({"plain", "with,comma"});
  table.AddRow({"quote\"inside", "x"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TablePrinter, CsvRowStructure) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace mrm
