#include "src/driver/builders.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace mrm {
namespace driver {
namespace {

Config Parse(const std::string& text) {
  auto parsed = Config::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return parsed.ok() ? parsed.value() : Config();
}

TEST(Builders, DeviceFromPresetWithDefaults) {
  const Config config = Parse("hbm.preset = hbm3\n");
  auto device = BuildDeviceConfig(config, "hbm");
  ASSERT_TRUE(device.ok());
  EXPECT_EQ(device.value().name, "HBM3");
  EXPECT_EQ(device.value().channels, 16);
}

TEST(Builders, DeviceOverrides) {
  const Config config = Parse("hbm.preset = ddr5\nhbm.channels = 4\nhbm.row_bytes = 2048\n");
  auto device = BuildDeviceConfig(config, "hbm");
  ASSERT_TRUE(device.ok());
  EXPECT_EQ(device.value().channels, 4);
  EXPECT_EQ(device.value().row_bytes, 2048u);
}

TEST(Builders, DeviceUnknownPresetFails) {
  const Config config = Parse("hbm.preset = hbm9\n");
  EXPECT_FALSE(BuildDeviceConfig(config, "hbm").ok());
}

TEST(Builders, DeviceInvalidOverrideFails) {
  // row_bytes not a multiple of access_bytes.
  const Config config = Parse("hbm.preset = hbm3\nhbm.row_bytes = 100\n");
  EXPECT_FALSE(BuildDeviceConfig(config, "hbm").ok());
}

TEST(Builders, MrmDefaults) {
  const Config config = Parse("mrm.technology = rram\n");
  auto mrm = BuildMrmConfig(config, "mrm");
  ASSERT_TRUE(mrm.ok());
  EXPECT_EQ(mrm.value().technology, cell::Technology::kRram);
}

TEST(Builders, MrmOverrides) {
  const Config config = Parse(
      "mrm.technology = pcm\n"
      "mrm.channels = 32\n"
      "mrm.block_bytes = 128KiB\n"
      "mrm.retention = 2h\n"
      "mrm.read_bw_gbps = 50\n");
  auto mrm = BuildMrmConfig(config, "mrm");
  ASSERT_TRUE(mrm.ok());
  EXPECT_EQ(mrm.value().channels, 32);
  EXPECT_EQ(mrm.value().block_bytes, 128u * 1024);
  EXPECT_DOUBLE_EQ(mrm.value().default_retention_s, 7200.0);
  EXPECT_DOUBLE_EQ(mrm.value().channel_read_bw_bytes_per_s, 50e9);
}

TEST(Builders, MrmUnknownTechnologyFails) {
  const Config config = Parse("mrm.technology = flux-capacitor\n");
  EXPECT_FALSE(BuildMrmConfig(config, "mrm").ok());
}

TEST(Builders, ModelPresetAndOverride) {
  const Config config = Parse("model = llama2-70b\nmodel.max_context = 8192\n");
  auto model = BuildModel(config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().max_context_tokens, 8192);
}

TEST(Builders, UnknownModelFails) {
  EXPECT_FALSE(BuildModel(Parse("model = gpt9000\n")).ok());
}

TEST(Builders, ProfileLookup) {
  EXPECT_TRUE(BuildProfile("splitwise-coding").ok());
  EXPECT_TRUE(BuildProfile("long-context-summarization").ok());
  EXPECT_FALSE(BuildProfile("angry-users").ok());
}

TEST(Builders, HbmOnlyScenario) {
  const Config config = Parse(
      "model = phi3-14b\n"
      "hbm.preset = hbm3e\n"
      "hbm.devices = 4\n"
      "workload.requests = 4\n"
      "workload.rate = 10\n");
  auto scenario = BuildScenario(config);
  ASSERT_TRUE(scenario.ok()) << scenario.status().message();
  EXPECT_EQ(scenario.value().tiers.size(), 1u);
  EXPECT_EQ(scenario.value().placement.weights_tier, 0);
}

TEST(Builders, MrmScenarioPlacesWeightsOnMrm) {
  const Config config = Parse(
      "model = phi3-14b\n"
      "hbm.devices = 2\n"
      "mrm.technology = stt-mram\n"
      "mrm.retention = 1h\n"
      "workload.requests = 4\n"
      "workload.rate = 10\n");
  auto scenario = BuildScenario(config);
  ASSERT_TRUE(scenario.ok()) << scenario.status().message();
  EXPECT_EQ(scenario.value().tiers.size(), 2u);
  EXPECT_EQ(scenario.value().placement.weights_tier, 1);
  EXPECT_EQ(scenario.value().backend_options.scrub_tier, 1);
  EXPECT_DOUBLE_EQ(scenario.value().mrm_retention_s, 3600.0);
}

TEST(Builders, WeightsOnMrmWithoutMrmFails) {
  const Config config = Parse(
      "model = phi3-14b\n"
      "placement.weights = mrm\n"
      "workload.requests = 1\n");
  EXPECT_FALSE(BuildScenario(config).ok());
}

TEST(Builders, BadHotFractionFails) {
  const Config config = Parse(
      "model = phi3-14b\n"
      "mrm.technology = rram\n"
      "placement.kv_hot_fraction = 1.5\n"
      "workload.requests = 1\n");
  EXPECT_FALSE(BuildScenario(config).ok());
}

TEST(Builders, RunScenarioCompletesRequests) {
  const Config config = Parse(
      "model = phi3-14b\n"
      "hbm.devices = 4\n"
      "workload.requests = 6\n"
      "workload.rate = 5\n"
      "engine.max_batch = 4\n");
  auto scenario = BuildScenario(config);
  ASSERT_TRUE(scenario.ok());
  const ScenarioResult result = RunScenario(scenario.value());
  EXPECT_EQ(result.summary.requests_completed, 6u);
  EXPECT_GT(result.summary.decode_tokens_per_s(), 0.0);
  EXPECT_GT(result.tco.memory_cost_dollars, 0.0);
}

TEST(Builders, BackendKindParses) {
  EXPECT_TRUE(BackendKindByName("analytic").ok());
  EXPECT_TRUE(BackendKindByName("tiered").ok());
  EXPECT_TRUE(BackendKindByName("sim").ok());
  EXPECT_FALSE(BackendKindByName("quantum").ok());
  EXPECT_STREQ(BackendKindName(BackendKind::kSim), "sim");
}

TEST(Builders, ScenarioDefaultsToTieredBackend) {
  auto scenario = BuildScenario(Parse("model = phi3-14b\nworkload.requests = 1\n"));
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario.value().backend, BackendKind::kTiered);
}

TEST(Builders, BackendKeySelectsAndValidates) {
  auto scenario = BuildScenario(Parse(
      "model = phi3-14b\n"
      "backend = sim\n"
      "sim.threads = 4\n"
      "sim.epoch_batch = 16\n"
      "sim.spec_horizon = 4096\n"
      "sim.lower_scale = 2048\n"
      "workload.requests = 1\n"));
  ASSERT_TRUE(scenario.ok()) << scenario.status().message();
  EXPECT_EQ(scenario.value().backend, BackendKind::kSim);
  EXPECT_EQ(scenario.value().sim_threads, 4);
  EXPECT_EQ(scenario.value().sim_epoch_batch, 16);
  EXPECT_EQ(scenario.value().sim_spec_horizon, 4096u);
  EXPECT_EQ(scenario.value().sim_lower_scale, 2048u);
  // sim.epoch_batch and sim.spec_horizon default to 0 = auto / speculation off.
  auto defaulted = BuildScenario(Parse(
      "model = phi3-14b\nbackend = sim\nworkload.requests = 1\n"));
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted.value().sim_epoch_batch, 0);
  EXPECT_EQ(defaulted.value().sim_spec_horizon, 0u);
  EXPECT_FALSE(BuildScenario(Parse(
                   "model = phi3-14b\nbackend = warp\nworkload.requests = 1\n"))
                   .ok());
  EXPECT_FALSE(BuildScenario(Parse(
                   "model = phi3-14b\nbackend = sim\nsim.threads = 0\n"
                   "workload.requests = 1\n"))
                   .ok());
  EXPECT_FALSE(BuildScenario(Parse(
                   "model = phi3-14b\nbackend = sim\nsim.epoch_batch = -1\n"
                   "workload.requests = 1\n"))
                   .ok());
  EXPECT_FALSE(BuildScenario(Parse(
                   "model = phi3-14b\nbackend = sim\nsim.spec_horizon = -1\n"
                   "workload.requests = 1\n"))
                   .ok());
}

TEST(Builders, AnalyticBackendRejectsMrmScenario) {
  const Config config = Parse(
      "model = phi3-14b\n"
      "backend = analytic\n"
      "mrm.technology = stt-mram\n"
      "workload.requests = 1\n");
  EXPECT_FALSE(BuildScenario(config).ok());
}

TEST(Builders, MakeBackendBuildsEachKind) {
  const char* base =
      "model = phi3-14b\n"
      "hbm.devices = 4\n"
      "workload.requests = 1\n";
  auto tiered = BuildScenario(Parse(base));
  ASSERT_TRUE(tiered.ok());
  auto tiered_backend = MakeBackend(tiered.value());
  ASSERT_TRUE(tiered_backend.ok());
  EXPECT_NE(tiered_backend.value()->name().find("tiered"), std::string::npos);

  auto analytic = BuildScenario(Parse(std::string(base) + "backend = analytic\n"));
  ASSERT_TRUE(analytic.ok());
  auto analytic_backend = MakeBackend(analytic.value());
  ASSERT_TRUE(analytic_backend.ok());

  auto sim = BuildScenario(Parse(std::string(base) + "backend = sim\n"));
  ASSERT_TRUE(sim.ok());
  auto sim_backend = MakeBackend(sim.value());
  ASSERT_TRUE(sim_backend.ok()) << sim_backend.status().message();
  EXPECT_NE(sim_backend.value()->name().find("sim"), std::string::npos);
}

TEST(Builders, RunScenarioOnSimBackendCompletesRequests) {
  // The same workload config as the tiered run, only the backend key moved —
  // the point of the unified interface.
  const Config config = Parse(
      "model = phi3-14b\n"
      "hbm.devices = 4\n"
      "backend = sim\n"
      "sim.lower_scale = 16384\n"
      "workload.requests = 2\n"
      "workload.rate = 5\n"
      "engine.max_batch = 2\n");
  auto scenario = BuildScenario(config);
  ASSERT_TRUE(scenario.ok()) << scenario.status().message();
  const ScenarioResult result = RunScenario(scenario.value());
  EXPECT_EQ(result.summary.requests_completed, 2u);
  EXPECT_GT(result.summary.decode_tokens_per_s(), 0.0);
  EXPECT_NE(result.backend_name.find("sim"), std::string::npos);
}

TEST(Builders, ScenarioIsDeterministicInSeed) {
  const char* text =
      "model = phi3-14b\n"
      "workload.requests = 5\n"
      "workload.rate = 5\n"
      "workload.seed = 42\n";
  auto a = BuildScenario(Parse(text));
  auto b = BuildScenario(Parse(text));
  ASSERT_TRUE(a.ok() && b.ok());
  const ScenarioResult ra = RunScenario(a.value());
  const ScenarioResult rb = RunScenario(b.value());
  EXPECT_DOUBLE_EQ(ra.summary.duration_s, rb.summary.duration_s);
  EXPECT_EQ(ra.summary.decode_tokens, rb.summary.decode_tokens);
}

}  // namespace
}  // namespace driver
}  // namespace mrm
