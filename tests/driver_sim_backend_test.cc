#include "src/driver/sim_backend.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/workload/backend.h"

namespace mrm {
namespace driver {
namespace {

using workload::StepBatch;
using workload::Stream;

SimBackendOptions SmallHbmOptions() {
  SimBackendOptions options;
  options.device = mem::HBM3EConfig();
  options.devices = 1;
  options.lower_scale = 4096;
  return options;
}

constexpr std::uint64_t kWeights = 8ull * kGiB;

StepBatch DecodeBatch() {
  StepBatch batch;
  batch.Read(Stream::kWeights, kWeights);
  batch.Read(Stream::kKvCache, 2ull * kGiB);
  batch.Write(Stream::kKvCache, 64ull * kMiB);
  return batch;
}

TEST(SimBackendOptions, ValidatesRanges) {
  SimBackendOptions options = SmallHbmOptions();
  EXPECT_TRUE(options.Validate(kWeights).ok());
  options.devices = 0;
  EXPECT_FALSE(options.Validate(kWeights).ok());
  options = SmallHbmOptions();
  options.sim_threads = -1;
  EXPECT_FALSE(options.Validate(kWeights).ok());
  options = SmallHbmOptions();
  options.lower_scale = 0;
  EXPECT_FALSE(options.Validate(kWeights).ok());
  options = SmallHbmOptions();
  options.ticks_per_second = 0.0;
  EXPECT_FALSE(options.Validate(kWeights).ok());
}

TEST(SimBackendOptions, RejectsWeightsOverflowingSimulatedDevice) {
  SimBackendOptions options = SmallHbmOptions();
  options.lower_scale = 1;  // a full device's worth of weights per sweep
  const Status status = options.Validate(10ull * options.device.capacity_bytes());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("lower_scale"), std::string::npos);
}

TEST(SimBackend, StepCostTracksDeviceBandwidth) {
  SimBackend backend(SmallHbmOptions(), kWeights);
  StepBatch batch;
  batch.Read(Stream::kWeights, kWeights);
  const workload::StepCost cost = backend.SubmitStep(batch);
  ASSERT_GT(cost.seconds, 0.0);
  // The measured stream should land within 20% of the analytic stream model
  // (tier spec [0] is built from the same device config).
  const double analytic_s = static_cast<double>(kWeights) /
                            backend.tier_specs()[0].read_bw_bytes_per_s;
  EXPECT_NEAR(cost.seconds, analytic_s, 0.2 * analytic_s);
  EXPECT_GT(cost.energy_j, 0.0);
}

TEST(SimBackend, EnergyLedgerAccumulates) {
  SimBackend backend(SmallHbmOptions(), kWeights);
  const workload::StepCost cost = backend.SubmitStep(DecodeBatch());
  EXPECT_NEAR(backend.EnergyJoules(), cost.energy_j, 1e-12);
  backend.AccountTime(1.0);
  // Static/background power joins via AccountTime.
  EXPECT_GT(backend.EnergyJoules(), cost.energy_j);
}

TEST(SimBackend, EmptyStepIsFree) {
  SimBackend backend(SmallHbmOptions(), kWeights);
  const workload::StepCost cost = backend.SubmitStep(StepBatch());
  EXPECT_EQ(cost.seconds, 0.0);
  EXPECT_EQ(cost.energy_j, 0.0);
}

TEST(SimBackend, KvCapacityExcludesWeights) {
  SimBackend backend(SmallHbmOptions(), kWeights);
  const std::uint64_t capacity = backend.options().device.capacity_bytes();
  EXPECT_EQ(backend.KvCapacityBytes(), capacity - kWeights);
}

// The acceptance bar for the sharded closed loop: SystemStats, step times
// and energy are bit-identical at --sim-threads 1, 2 and 4.
TEST(SimBackend, StatsBitIdenticalAcrossSimThreads) {
  std::vector<double> seconds;
  std::vector<double> energy;
  std::vector<mem::SystemStats> stats;
  std::vector<SimBackendStats> counters;
  for (const int threads : {1, 2, 4}) {
    SimBackendOptions options = SmallHbmOptions();
    options.sim_threads = threads;
    SimBackend backend(options, kWeights);
    double total_s = 0.0;
    for (int step = 0; step < 3; ++step) {
      total_s += backend.SubmitStep(DecodeBatch()).seconds;
    }
    seconds.push_back(total_s);
    energy.push_back(backend.EnergyJoules());
    stats.push_back(backend.MemStats());
    counters.push_back(backend.sim_stats());
  }
  for (std::size_t i = 1; i < seconds.size(); ++i) {
    EXPECT_EQ(seconds[i], seconds[0]);  // exact, not NEAR: bit-identical
    EXPECT_EQ(energy[i], energy[0]);
    EXPECT_TRUE(stats[i] == stats[0]);
    EXPECT_EQ(counters[i].dram_segments, counters[0].dram_segments);
    EXPECT_EQ(counters[i].dram_bytes, counters[0].dram_bytes);
  }
}

SimBackendOptions SmallMrmOptions() {
  SimBackendOptions options = SmallHbmOptions();
  options.mrm_enabled = true;
  options.mrm.technology = cell::Technology::kSttMram;
  options.mrm.channels = 8;
  options.mrm.zones = 64;
  options.mrm.zone_blocks = 256;
  options.placement.weights_tier = 1;
  options.placement.kv_cold_tier = 1;
  options.placement.kv_hot_fraction = 0.25;
  return options;
}

TEST(SimBackend, MrmWeightsPreloadAndRead) {
  SimBackend backend(SmallMrmOptions(), kWeights);
  EXPECT_GT(backend.sim_stats().mrm_blocks_written, 0u);  // preload
  const std::uint64_t preloaded = backend.sim_stats().mrm_blocks_written;
  StepBatch batch;
  batch.Read(Stream::kWeights, kWeights);
  const workload::StepCost cost = backend.SubmitStep(batch);
  EXPECT_GT(cost.seconds, 0.0);
  EXPECT_GT(backend.sim_stats().mrm_blocks_read, 0u);
  EXPECT_EQ(backend.sim_stats().mrm_blocks_written, preloaded);  // reads only
  EXPECT_EQ(backend.sim_stats().mrm_read_failures, 0u);
}

TEST(SimBackend, MrmKvWritesAppendBlocks) {
  SimBackend backend(SmallMrmOptions(), kWeights);
  const std::uint64_t preloaded = backend.sim_stats().mrm_blocks_written;
  StepBatch batch;
  batch.Write(Stream::kKvCache, 1ull * kGiB);
  backend.SubmitStep(batch);
  EXPECT_GT(backend.sim_stats().mrm_blocks_written, preloaded);
}

TEST(SimBackend, MrmStatsBitIdenticalAcrossSimThreads) {
  std::vector<double> seconds;
  std::vector<std::uint64_t> reads;
  for (const int threads : {1, 4}) {
    SimBackendOptions options = SmallMrmOptions();
    options.sim_threads = threads;
    SimBackend backend(options, kWeights);
    StepBatch batch;
    batch.Read(Stream::kWeights, kWeights);
    batch.Write(Stream::kKvCache, 256ull * kMiB);
    double total_s = 0.0;
    for (int step = 0; step < 2; ++step) {
      total_s += backend.SubmitStep(batch).seconds;
    }
    seconds.push_back(total_s);
    reads.push_back(backend.sim_stats().mrm_blocks_read);
  }
  EXPECT_EQ(seconds[1], seconds[0]);
  EXPECT_EQ(reads[1], reads[0]);
}

TEST(SimBackend, OnKvFreedReleasesMrmBlocks) {
  SimBackend backend(SmallMrmOptions(), kWeights);
  StepBatch batch;
  batch.Write(Stream::kKvCache, 1ull * kGiB);
  backend.SubmitStep(batch);
  const auto live_before = backend.control_plane()->live_blocks();
  backend.OnKvFreed(1ull * kGiB);
  EXPECT_LT(backend.control_plane()->live_blocks(), live_before);
}

TEST(SimBackend, NameReflectsTiers) {
  SimBackend hbm_backend(SmallHbmOptions(), kWeights);
  EXPECT_NE(hbm_backend.name().find("sim"), std::string::npos);
  SimBackend mrm_backend(SmallMrmOptions(), kWeights);
  EXPECT_NE(mrm_backend.name().find("mrm"), std::string::npos);
}

}  // namespace
}  // namespace driver
}  // namespace mrm
