#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/fault/fault_config.h"

namespace mrm {
namespace fault {
namespace {

TEST(FaultConfigTest, DefaultIsDisabledAndValid) {
  const FaultConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_TRUE(config.Validate().ok());
}

TEST(FaultConfigTest, AnyRateEnables) {
  FaultConfig config;
  config.transient_rber = 1e-6;
  EXPECT_TRUE(config.enabled());
  config = FaultConfig();
  config.stuck_block_prob = 0.1;
  EXPECT_TRUE(config.enabled());
  config = FaultConfig();
  config.zone_failure_prob = 0.1;
  EXPECT_TRUE(config.enabled());
  config = FaultConfig();
  config.channel_stall_prob = 0.1;
  EXPECT_TRUE(config.enabled());
  config = FaultConfig();
  config.drop_completion_prob = 0.1;
  EXPECT_TRUE(config.enabled());
}

TEST(FaultConfigTest, ValidationRejectsEachBadField) {
  FaultConfig config;
  config.transient_rber = 0.6;  // beyond the 0.5 RBER ceiling
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.stuck_block_prob = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.stuck_wear_fraction = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.zone_failure_prob = 2.0;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.channel_stall_prob = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.channel_stall_ns = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.drop_completion_prob = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.completion_retry_ns = -5.0;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.silent_fraction = -0.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FaultSpecTest, ParsesKeyValueList) {
  const auto parsed =
      ParseFaultSpec("transient_rber=1e-4,seed=7,zone_failure_prob=0.25,channel_stall_ns=300");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().transient_rber, 1e-4);
  EXPECT_EQ(parsed.value().seed, 7u);
  EXPECT_DOUBLE_EQ(parsed.value().zone_failure_prob, 0.25);
  EXPECT_DOUBLE_EQ(parsed.value().channel_stall_ns, 300.0);
  // Unnamed fields keep their defaults.
  EXPECT_DOUBLE_EQ(parsed.value().stuck_wear_fraction, 0.9);
}

TEST(FaultSpecTest, EmptySpecReturnsBase) {
  FaultConfig base;
  base.seed = 42;
  const auto parsed = ParseFaultSpec("", base);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().seed, 42u);
  EXPECT_FALSE(parsed.value().enabled());
}

TEST(FaultSpecTest, RejectsUnknownKeyAndMalformedValue) {
  EXPECT_FALSE(ParseFaultSpec("bogus_knob=1").ok());
  EXPECT_FALSE(ParseFaultSpec("transient_rber=banana").ok());
  EXPECT_FALSE(ParseFaultSpec("transient_rber").ok());
  EXPECT_FALSE(ParseFaultSpec("transient_rber=0.7").ok());  // fails Validate
}

TEST(FaultInjectorTest, RollsAreKeyedNotSequential) {
  FaultConfig config;
  config.seed = 99;
  config.transient_rber = 1e-3;
  config.silent_fraction = 0.0;
  FaultInjector forward(config);
  FaultInjector backward(config);

  // The same (block, read_seq) pairs rolled in opposite orders must produce
  // identical outcomes: each decision is a pure function of the key, never
  // of injector call history. This is the --sim-threads determinism claim.
  std::vector<FaultInjector::ReadRoll> a;
  std::vector<FaultInjector::ReadRoll> b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(forward.RollRead(i, 0, 0.3, 0.5));
  }
  for (int i = 63; i >= 0; --i) {
    b.push_back(backward.RollRead(i, 0, 0.3, 0.5));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a[i], b[63 - i]) << "block " << i;
  }
  EXPECT_EQ(forward.stats().read_rolls, 64u);
  EXPECT_EQ(forward.stats(), backward.stats());
}

TEST(FaultInjectorTest, DistinctSeedsDecorrelate) {
  FaultConfig config;
  config.transient_rber = 1e-3;
  config.seed = 1;
  FaultInjector one(config);
  config.seed = 2;
  FaultInjector two(config);
  int differing = 0;
  for (int i = 0; i < 256; ++i) {
    if (one.RollRead(i, 0, 0.5, 0.0) != two.RollRead(i, 0, 0.5, 0.0)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, ReadRollRespectsProbabilities) {
  FaultConfig config;
  config.transient_rber = 1e-3;
  config.silent_fraction = 0.0;
  FaultInjector injector(config);
  // Certain uncorrectable (silent fraction zero) and certain clean.
  EXPECT_EQ(injector.RollRead(1, 0, 1.0, 1.0), FaultInjector::ReadRoll::kUncorrectable);
  EXPECT_EQ(injector.RollRead(1, 1, 0.0, 0.0), FaultInjector::ReadRoll::kClean);
  // Certain corrected: no uncorrectable mass, all raw-error mass.
  EXPECT_EQ(injector.RollRead(1, 2, 0.0, 1.0), FaultInjector::ReadRoll::kCorrected);
  EXPECT_EQ(injector.stats().reads_uncorrectable, 1u);
  EXPECT_EQ(injector.stats().reads_corrected, 1u);
  EXPECT_EQ(injector.stats().reads_silent, 0u);
}

TEST(FaultInjectorTest, SilentFractionConvertsUncorrectables) {
  FaultConfig config;
  config.transient_rber = 1e-3;
  config.silent_fraction = 1.0;  // every uncorrectable miscorrects
  FaultInjector injector(config);
  EXPECT_EQ(injector.RollRead(1, 0, 1.0, 0.0), FaultInjector::ReadRoll::kSilent);
  EXPECT_EQ(injector.stats().reads_silent, 1u);
  // Silent corruption is terminal at injection: accounted immediately.
  EXPECT_EQ(injector.stats().resolutions, 1u);
}

TEST(FaultInjectorTest, StuckRollGatedByWearFraction) {
  FaultConfig config;
  config.stuck_block_prob = 1.0;
  config.stuck_wear_fraction = 0.9;
  FaultInjector injector(config);
  EXPECT_FALSE(injector.RollStuck(1, 10, 0.5));  // below the wear gate
  EXPECT_TRUE(injector.RollStuck(1, 10, 0.95));
  EXPECT_EQ(injector.stats().stuck_blocks, 1u);
}

TEST(FaultInjectorTest, ZoneStallDropRollsCountStats) {
  FaultConfig config;
  config.zone_failure_prob = 1.0;
  config.channel_stall_prob = 1.0;
  config.drop_completion_prob = 1.0;
  FaultInjector injector(config);
  EXPECT_TRUE(injector.RollZoneFailure(3, 0));
  EXPECT_TRUE(injector.RollStall(17));
  EXPECT_TRUE(injector.RollDrop(17));
  EXPECT_EQ(injector.stats().zone_failures, 1u);
  EXPECT_EQ(injector.stats().channel_stalls, 1u);
  EXPECT_EQ(injector.stats().dropped_completions, 1u);
  EXPECT_EQ(injector.stats().injected_total(), 3u);

  injector.ResolveZone(3, FaultResolution::kZoneRetired);
  injector.ResolveStall(17);
  injector.ResolveDrop(17);
  EXPECT_EQ(injector.stats().resolutions, 3u);
}

TEST(FaultInjectorTest, ZeroRatesNeverFire) {
  FaultConfig config;
  config.seed = 5;
  FaultInjector injector(config);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(injector.RollStuck(i, 100, 1.0));
    EXPECT_FALSE(injector.RollZoneFailure(i, 0));
    EXPECT_FALSE(injector.RollStall(i));
    EXPECT_FALSE(injector.RollDrop(i));
  }
  EXPECT_EQ(injector.stats().injected_total(), 0u);
}

}  // namespace
}  // namespace fault
}  // namespace mrm
