// Cross-module integration tests: the full pipeline from device presets
// through tier specs and the inference engine to the analysis metrics —
// checking that the paper's qualitative claims emerge from the composed
// system, not just from each module in isolation.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/endurance.h"
#include "src/analysis/tco.h"
#include "src/common/units.h"
#include "src/mem/device_config.h"
#include "src/mrm/control_plane.h"
#include "src/mrm/mrm_device.h"
#include "src/tier/tier_spec.h"
#include "src/tier/tiered_backend.h"
#include "src/workload/inference_engine.h"
#include "src/workload/request_generator.h"

namespace mrm {
namespace {

workload::EngineConfig MidEngine() {
  workload::EngineConfig config;
  config.model = workload::Llama2_70B();
  config.max_batch = 8;
  config.compute_tflops = 800.0;
  config.prefill_chunk_tokens = 1024;
  return config;
}

std::vector<workload::InferenceRequest> SmallWorkload(int count) {
  workload::RequestGenerator generator(workload::SplitwiseConversation(), 5.0, 99);
  std::vector<workload::InferenceRequest> requests;
  for (int i = 0; i < count; ++i) {
    workload::InferenceRequest request = generator.Next();
    request.prompt_tokens = std::min(request.prompt_tokens, 2048);
    request.output_tokens = std::min(request.output_tokens, 64);
    requests.push_back(request);
  }
  return requests;
}

TEST(Integration, HbmOnlyServesLlamaAndIsMemoryBound) {
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  workload::AnalyticBackend backend(hbm, workload::Llama2_70B().weight_bytes());
  workload::InferenceEngine engine(MidEngine(), &backend);
  const workload::EngineSummary summary = engine.Run(SmallWorkload(10));
  EXPECT_EQ(summary.requests_completed, 10u);
  // §2.1: decode on HBM-class memory is memory bound.
  EXPECT_GT(summary.memory_bound_fraction(), 0.5);
  // §2.2: read:write ratio over 1000:1.
  EXPECT_GT(summary.read_write_ratio(), 1000.0);
}

TEST(Integration, MrmWeightsTierMatchesHbmThroughputAtLowerEnergy) {
  // Weights on an MRM tier sized for read bandwidth: tokens/s holds while
  // memory energy per token drops (the paper's core value proposition).
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);

  mrmcore::MrmDeviceConfig mrm_config;
  mrm_config.name = "mrm";
  mrm_config.technology = cell::Technology::kSttMram;
  mrm_config.channels = 64;
  mrm_config.channel_read_bw_bytes_per_s = 100e9;  // 6.4 TB/s aggregate
  const workload::TierSpec mrm = tier::TierSpecFromMrm(mrm_config, 1, 6 * kHour);

  // Baseline: all in HBM.
  workload::AnalyticBackend hbm_backend(hbm, workload::Llama2_70B().weight_bytes());
  workload::InferenceEngine hbm_engine(MidEngine(), &hbm_backend);
  const auto hbm_summary = hbm_engine.Run(SmallWorkload(10));

  // Tiered: weights+KV-cold on MRM, activations + KV-hot in HBM.
  tier::Placement placement;
  placement.weights_tier = 1;
  placement.kv_hot_tier = 0;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.1;
  placement.activations_tier = 0;
  tier::TieredBackend tiered({hbm, mrm}, placement, workload::Llama2_70B().weight_bytes());
  workload::InferenceEngine tiered_engine(MidEngine(), &tiered);
  const auto tiered_summary = tiered_engine.Run(SmallWorkload(10));

  EXPECT_EQ(tiered_summary.requests_completed, 10u);
  // Throughput within 30% of HBM-only.
  EXPECT_GT(tiered_summary.decode_tokens_per_s(), hbm_summary.decode_tokens_per_s() * 0.7);
  // Energy per token strictly better.
  EXPECT_LT(tiered_summary.energy_per_decode_token_j(),
            hbm_summary.energy_per_decode_token_j());
}

TEST(Integration, TcoFavorsMrmTiering) {
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  mrmcore::MrmDeviceConfig mrm_config;
  mrm_config.technology = cell::Technology::kRram;  // cheap, dense
  mrm_config.channels = 64;
  const workload::TierSpec mrm = tier::TierSpecFromMrm(mrm_config, 1, 6 * kHour);

  workload::AnalyticBackend hbm_backend(hbm, workload::Llama2_70B().weight_bytes());
  workload::InferenceEngine hbm_engine(MidEngine(), &hbm_backend);
  const auto hbm_summary = hbm_engine.Run(SmallWorkload(8));
  const auto hbm_tco = analysis::ComputeTco(hbm_summary, {hbm});

  tier::Placement placement;
  placement.weights_tier = 1;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.1;
  // Smaller HBM next to the MRM: 2 stacks instead of 8.
  const workload::TierSpec small_hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 2);
  tier::TieredBackend tiered({small_hbm, mrm}, placement,
                             workload::Llama2_70B().weight_bytes());
  workload::InferenceEngine tiered_engine(MidEngine(), &tiered);
  const auto tiered_summary = tiered_engine.Run(SmallWorkload(8));
  const auto tiered_tco = analysis::ComputeTco(tiered_summary, {small_hbm, mrm});

  EXPECT_GT(tiered_tco.tokens_per_memory_dollar, hbm_tco.tokens_per_memory_dollar);
}

TEST(Integration, ControlPlaneServesKvLifecycleOverMrmDevice) {
  // Device + control plane end to end: append KV blocks with realistic
  // lifetimes, read them back during the "conversation", free on completion,
  // confirm zones get reclaimed and nothing needed was lost.
  sim::Simulator simulator(1e9);
  mrmcore::MrmDeviceConfig config;
  config.technology = cell::Technology::kSttMram;
  config.channels = 4;
  config.zones = 32;
  config.zone_blocks = 32;
  config.block_bytes = 64 * 1024;
  mrmcore::MrmDevice device(&simulator, config);
  mrmcore::ControlPlaneOptions options;
  options.scrub_period_s = 30.0;
  mrmcore::ControlPlane plane(&simulator, &device, options);

  int lost = 0;
  plane.SetLossHandler([&](mrmcore::LogicalId) { ++lost; });

  std::vector<mrmcore::LogicalId> live;
  int read_failures = 0;
  for (int conversation = 0; conversation < 20; ++conversation) {
    // Each conversation appends 16 blocks living ~10 minutes.
    for (int b = 0; b < 16; ++b) {
      auto id = plane.Append(600.0);
      ASSERT_TRUE(id.ok());
      live.push_back(id.value());
    }
    // Re-read everything appended so far (decode re-reads whole KV).
    for (mrmcore::LogicalId id : live) {
      const Status status = plane.Read(id, [&](bool ok) {
        if (!ok) {
          ++read_failures;
        }
      });
      ASSERT_TRUE(status.ok());
    }
    // Advance 30 simulated seconds of serving.
    simulator.RunUntil(simulator.SecondsToTicks((conversation + 1) * 30.0));
    // Conversations end after ~8 rounds: free their blocks.
    if (conversation >= 8) {
      for (int b = 0; b < 16; ++b) {
        plane.Free(live.front());
        live.erase(live.begin());
      }
    }
  }
  // Drain outstanding device work (Run() would never return here: the
  // control plane's periodic scrub task reschedules itself indefinitely).
  simulator.RunUntil(simulator.SecondsToTicks(20 * 30.0 + 10.0));
  EXPECT_EQ(read_failures, 0);
  EXPECT_EQ(lost, 0);  // nothing expired: lifetimes respected
  EXPECT_GT(plane.stats().zones_reclaimed, 0u);
  EXPECT_EQ(device.stats().endurance_failures, 0u);
}

TEST(Integration, EnduranceRequirementConsistentWithEngineTraffic) {
  // The Figure 1 KV write rate and the engine's measured KV write rate
  // agree within an order of magnitude for the same token rates.
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  workload::AnalyticBackend backend(hbm, workload::Llama2_70B().weight_bytes());
  workload::InferenceEngine engine(MidEngine(), &backend);
  const auto summary = engine.Run(SmallWorkload(20));

  const double engine_kv_write_rate =
      static_cast<double>(summary.kv_write_bytes) / summary.duration_s;
  const double engine_token_rate =
      static_cast<double>(summary.prefill_tokens + summary.decode_tokens) / summary.duration_s;
  const double model_rate =
      static_cast<double>(workload::Llama2_70B().kv_bytes_per_token()) * engine_token_rate;
  EXPECT_NEAR(engine_kv_write_rate / model_rate, 1.0, 0.05);
}

}  // namespace
}  // namespace mrm
