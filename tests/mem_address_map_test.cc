#include "src/mem/address_map.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/mem/device_config.h"

namespace mrm {
namespace mem {
namespace {

DeviceConfig SmallConfig() {
  DeviceConfig config;
  config.name = "test";
  config.channels = 4;
  config.ranks = 2;
  config.bank_groups = 2;
  config.banks_per_group = 4;
  config.rows_per_bank = 64;
  config.row_bytes = 512;
  config.access_bytes = 64;
  return config;
}

class AddressMapPolicyTest : public ::testing::TestWithParam<AddressMapPolicy> {};

INSTANTIATE_TEST_SUITE_P(Policies, AddressMapPolicyTest,
                         ::testing::Values(AddressMapPolicy::kRowBankRankColumnChannel,
                                           AddressMapPolicy::kRowColumnBankRankChannel));

TEST_P(AddressMapPolicyTest, RoundTripsEveryAccessUnit) {
  const DeviceConfig config = SmallConfig();
  const AddressMap map(config, GetParam());
  for (std::uint64_t addr = 0; addr < config.capacity_bytes(); addr += config.access_bytes) {
    const Location loc = map.Decode(addr);
    EXPECT_EQ(map.Encode(loc), addr);
  }
}

TEST_P(AddressMapPolicyTest, FieldsWithinBounds) {
  const DeviceConfig config = SmallConfig();
  const AddressMap map(config, GetParam());
  for (std::uint64_t addr = 0; addr < config.capacity_bytes(); addr += config.access_bytes) {
    const Location loc = map.Decode(addr);
    EXPECT_LT(loc.channel, config.channels);
    EXPECT_LT(loc.rank, config.ranks);
    EXPECT_LT(loc.bank_group, config.bank_groups);
    EXPECT_LT(loc.bank, config.banks_per_group);
    EXPECT_LT(loc.row, config.rows_per_bank);
    EXPECT_LT(loc.column, config.columns_per_row());
  }
}

TEST_P(AddressMapPolicyTest, DecodeIsInjective) {
  const DeviceConfig config = SmallConfig();
  const AddressMap map(config, GetParam());
  std::set<std::tuple<int, int, int, int, std::uint64_t, std::uint64_t>> seen;
  for (std::uint64_t addr = 0; addr < config.capacity_bytes(); addr += config.access_bytes) {
    const Location loc = map.Decode(addr);
    EXPECT_TRUE(
        seen.insert({loc.channel, loc.rank, loc.bank_group, loc.bank, loc.row, loc.column})
            .second)
        << "collision at " << addr;
  }
}

TEST(AddressMap, ConsecutiveLinesStripeAcrossChannels) {
  const DeviceConfig config = SmallConfig();
  const AddressMap map(config, AddressMapPolicy::kRowBankRankColumnChannel);
  for (int i = 0; i < config.channels; ++i) {
    const Location loc = map.Decode(static_cast<std::uint64_t>(i) * config.access_bytes);
    EXPECT_EQ(loc.channel, i);
  }
}

TEST(AddressMap, SequentialStreamIsRowFriendly) {
  // After channel striping, consecutive lines in one channel fill one row's
  // columns before touching another row.
  const DeviceConfig config = SmallConfig();
  const AddressMap map(config, AddressMapPolicy::kRowBankRankColumnChannel);
  const std::uint64_t stride =
      static_cast<std::uint64_t>(config.channels) * config.access_bytes;
  Location first = map.Decode(0);
  for (std::uint64_t c = 1; c < config.columns_per_row(); ++c) {
    const Location loc = map.Decode(c * stride);
    EXPECT_EQ(loc.row, first.row);
    EXPECT_EQ(loc.bank, first.bank);
    EXPECT_EQ(loc.column, c);
  }
}

TEST(AddressMap, SubLineOffsetsMapToSameColumn) {
  const DeviceConfig config = SmallConfig();
  const AddressMap map(config, AddressMapPolicy::kRowBankRankColumnChannel);
  const Location base = map.Decode(0);
  const Location mid = map.Decode(17);
  EXPECT_EQ(base.channel, mid.channel);
  EXPECT_EQ(base.column, mid.column);
}

TEST(AddressMap, FlatBankIndexUnique) {
  const DeviceConfig config = SmallConfig();
  std::set<int> flats;
  for (int rank = 0; rank < config.ranks; ++rank) {
    for (int group = 0; group < config.bank_groups; ++group) {
      for (int bank = 0; bank < config.banks_per_group; ++bank) {
        Location loc;
        loc.rank = rank;
        loc.bank_group = group;
        loc.bank = bank;
        EXPECT_TRUE(flats.insert(loc.FlatBank(config.bank_groups, config.banks_per_group)).second);
      }
    }
  }
  EXPECT_EQ(static_cast<int>(flats.size()), config.ranks * config.banks_per_rank());
}

}  // namespace
}  // namespace mem
}  // namespace mrm
