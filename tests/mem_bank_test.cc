#include "src/mem/bank.h"

#include <gtest/gtest.h>

namespace mrm {
namespace mem {
namespace {

TimingTicks SimpleTimings() {
  TimingTicks t;
  t.tck = 1;
  t.trcd = 10;
  t.trp = 10;
  t.tcas = 10;
  t.tcwl = 8;
  t.tras = 24;
  t.trc = 34;
  t.tccd = 2;
  t.tburst = 2;
  t.twr = 12;
  t.trtp = 6;
  t.trfc = 100;
  return t;
}

class BankTest : public ::testing::Test {
 protected:
  BankTest() : timings_(SimpleTimings()), bank_(&timings_) {}
  TimingTicks timings_;
  Bank bank_;
};

TEST_F(BankTest, StartsIdle) {
  EXPECT_EQ(bank_.state(), Bank::State::kIdle);
  EXPECT_TRUE(bank_.CanIssue(Command::kActivate, 0));
  EXPECT_FALSE(bank_.CanIssue(Command::kRead, 0));
  EXPECT_FALSE(bank_.CanIssue(Command::kWrite, 0));
  EXPECT_FALSE(bank_.CanIssue(Command::kPrecharge, 0));
}

TEST_F(BankTest, ActivateOpensRow) {
  bank_.Issue(Command::kActivate, 7, 0);
  EXPECT_EQ(bank_.state(), Bank::State::kActive);
  EXPECT_EQ(bank_.open_row(), 7u);
}

TEST_F(BankTest, ReadGatedByTrcd) {
  bank_.Issue(Command::kActivate, 0, 0);
  EXPECT_FALSE(bank_.CanIssue(Command::kRead, 9));
  EXPECT_TRUE(bank_.CanIssue(Command::kRead, 10));
  EXPECT_EQ(bank_.EarliestIssue(Command::kRead), 10u);
}

TEST_F(BankTest, PrechargeGatedByTras) {
  bank_.Issue(Command::kActivate, 0, 0);
  EXPECT_FALSE(bank_.CanIssue(Command::kPrecharge, 23));
  EXPECT_TRUE(bank_.CanIssue(Command::kPrecharge, 24));
}

TEST_F(BankTest, ActToActGatedByTrc) {
  bank_.Issue(Command::kActivate, 0, 0);
  bank_.Issue(Command::kPrecharge, 0, 24);
  // tRP from PRE would allow ACT at 34; tRC from ACT also says 34.
  EXPECT_EQ(bank_.EarliestIssue(Command::kActivate), 34u);
}

TEST_F(BankTest, BackToBackReadsGatedByTccd) {
  bank_.Issue(Command::kActivate, 0, 0);
  bank_.Issue(Command::kRead, 0, 10);
  EXPECT_FALSE(bank_.CanIssue(Command::kRead, 11));
  EXPECT_TRUE(bank_.CanIssue(Command::kRead, 12));
}

TEST_F(BankTest, ReadDelaysPrechargeByTrtp) {
  bank_.Issue(Command::kActivate, 0, 0);
  bank_.Issue(Command::kRead, 0, 30);  // past tRAS end (24)
  EXPECT_EQ(bank_.EarliestIssue(Command::kPrecharge), 36u);  // 30 + tRTP
}

TEST_F(BankTest, WriteDelaysPrechargeByWriteRecovery) {
  bank_.Issue(Command::kActivate, 0, 0);
  bank_.Issue(Command::kWrite, 0, 30);
  // PRE blocked until 30 + tCWL + tBURST + tWR = 30 + 8 + 2 + 12 = 52.
  EXPECT_EQ(bank_.EarliestIssue(Command::kPrecharge), 52u);
}

TEST_F(BankTest, PrechargeClosesRow) {
  bank_.Issue(Command::kActivate, 3, 0);
  bank_.Issue(Command::kPrecharge, 0, 24);
  EXPECT_EQ(bank_.state(), Bank::State::kIdle);
  // tRP gates next activate at 34 (combined with tRC).
  EXPECT_FALSE(bank_.CanIssue(Command::kActivate, 33));
  EXPECT_TRUE(bank_.CanIssue(Command::kActivate, 34));
}

TEST_F(BankTest, RefreshBlocksActivates) {
  bank_.Issue(Command::kRefresh, 0, 0);
  EXPECT_FALSE(bank_.CanIssue(Command::kActivate, 99));
  EXPECT_TRUE(bank_.CanIssue(Command::kActivate, 100));  // after tRFC
}

TEST_F(BankTest, RefreshOnlyWhenIdle) {
  bank_.Issue(Command::kActivate, 0, 0);
  EXPECT_EQ(bank_.EarliestIssue(Command::kRefresh), sim::kTickNever);
}

TEST_F(BankTest, BlockUntilForcesIdleAndDelays) {
  bank_.Issue(Command::kActivate, 5, 0);
  bank_.BlockUntil(500);
  EXPECT_EQ(bank_.state(), Bank::State::kIdle);
  EXPECT_FALSE(bank_.CanIssue(Command::kActivate, 499));
  EXPECT_TRUE(bank_.CanIssue(Command::kActivate, 500));
}

TEST_F(BankTest, WriteThenReadGatedByTccd) {
  bank_.Issue(Command::kActivate, 0, 0);
  bank_.Issue(Command::kWrite, 0, 10);
  EXPECT_EQ(bank_.EarliestIssue(Command::kRead), 12u);
}

}  // namespace
}  // namespace mem
}  // namespace mrm
