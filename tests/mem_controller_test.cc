#include "src/mem/controller.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace mrm {
namespace mem {
namespace {

DeviceConfig OneChannelConfig() {
  DeviceConfig config;
  config.name = "one-channel";
  config.channels = 1;
  config.ranks = 1;
  config.bank_groups = 2;
  config.banks_per_group = 2;
  config.rows_per_bank = 64;
  config.row_bytes = 512;
  config.access_bytes = 64;
  return config;
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : simulator_(1e9),
        config_(OneChannelConfig()),
        map_(config_, AddressMapPolicy::kRowBankRankColumnChannel),
        controller_(&simulator_, &config_, &map_, 0, SchedulerPolicy::kFrFcfs) {}

  Request MakeRequest(Request::Kind kind, std::uint64_t addr,
                      std::function<void(const Request&)> cb = nullptr) {
    Request request;
    request.kind = kind;
    request.addr = addr;
    request.size = 64;
    request.on_complete = std::move(cb);
    return request;
  }

  sim::Simulator simulator_;
  DeviceConfig config_;
  AddressMap map_;
  ChannelController controller_;
};

TEST_F(ControllerTest, QueueCapacityEnforced) {
  for (std::size_t i = 0; i < controller_.queue_capacity(); ++i) {
    EXPECT_TRUE(controller_.Enqueue(MakeRequest(Request::Kind::kRead, i * 64)));
  }
  EXPECT_FALSE(controller_.Enqueue(MakeRequest(Request::Kind::kRead, 0)));
  EXPECT_EQ(controller_.queue_depth(), controller_.queue_capacity());
}

TEST_F(ControllerTest, SlotFreeCallbackFires) {
  int slot_frees = 0;
  controller_.set_on_slot_free([&] { ++slot_frees; });
  controller_.Enqueue(MakeRequest(Request::Kind::kRead, 0));
  controller_.Enqueue(MakeRequest(Request::Kind::kRead, 64));
  simulator_.Run();
  EXPECT_EQ(slot_frees, 2);
}

TEST_F(ControllerTest, ReadLatencyMatchesTimingChain) {
  sim::Tick completed = 0;
  controller_.Enqueue(
      MakeRequest(Request::Kind::kRead, 0, [&](const Request& r) { completed = r.complete_tick; }));
  simulator_.Run();
  // Cold access: ACT at t>=0, RD at tRCD, data at tRCD+tCAS+tBURST. The
  // controller issues ACT on the first wake (t=0) and RD one command slot
  // after the constraint clears.
  const sim::Tick expected_min = 14 + 14 + 2;  // tRCD + tCAS + tBURST
  EXPECT_GE(completed, expected_min);
  EXPECT_LE(completed, expected_min + 4);
}

TEST_F(ControllerTest, WriteLatencyUsesCwl) {
  sim::Tick completed = 0;
  controller_.Enqueue(MakeRequest(Request::Kind::kWrite, 0,
                                  [&](const Request& r) { completed = r.complete_tick; }));
  simulator_.Run();
  const sim::Tick expected_min = 14 + 12 + 2;  // tRCD + tCWL + tBURST
  EXPECT_GE(completed, expected_min);
  EXPECT_LE(completed, expected_min + 4);
}

TEST_F(ControllerTest, RowHitFollowsFasterThanMiss) {
  sim::Tick first = 0;
  sim::Tick second = 0;
  controller_.Enqueue(
      MakeRequest(Request::Kind::kRead, 0, [&](const Request& r) { first = r.complete_tick; }));
  controller_.Enqueue(
      MakeRequest(Request::Kind::kRead, 64, [&](const Request& r) { second = r.complete_tick; }));
  simulator_.Run();
  // The second access hits the open row: only tCCD + bus apart.
  EXPECT_LT(second - first, 10u);
  EXPECT_EQ(controller_.stats().row_hits, 1u);
  EXPECT_EQ(controller_.stats().row_misses, 1u);
}

TEST_F(ControllerTest, RowConflictPaysPrechargePenalty) {
  const AddressMap& map = map_;
  Location conflict;
  conflict.row = 5;  // same bank 0, different row
  sim::Tick first = 0;
  sim::Tick second = 0;
  controller_.Enqueue(
      MakeRequest(Request::Kind::kRead, 0, [&](const Request& r) { first = r.complete_tick; }));
  controller_.Enqueue(MakeRequest(Request::Kind::kRead, map.Encode(conflict),
                                  [&](const Request& r) { second = r.complete_tick; }));
  simulator_.Run();
  // Conflict needs PRE (after tRTP/tRAS) + ACT (tRP) + tRCD again.
  EXPECT_GT(second - first, 30u);
  EXPECT_EQ(controller_.stats().row_misses, 2u);
}

TEST_F(ControllerTest, EnergyCountersTrackCommands) {
  controller_.Enqueue(MakeRequest(Request::Kind::kRead, 0));
  controller_.Enqueue(MakeRequest(Request::Kind::kRead, 64));   // row hit
  Location other_row;
  other_row.row = 9;
  controller_.Enqueue(MakeRequest(Request::Kind::kRead, map_.Encode(other_row)));
  simulator_.Run();
  const EnergyCounters& counters = controller_.energy_counters();
  EXPECT_EQ(counters.activates, 2u);   // initial ACT + conflict re-ACT
  EXPECT_EQ(counters.precharges, 1u);  // conflict PRE
  EXPECT_EQ(counters.read_bits, 3u * 64 * 8);
  EXPECT_EQ(counters.write_bits, 0u);
}

TEST_F(ControllerTest, EnergyReportIncludesBackground) {
  simulator_.ScheduleAt(1000, [] {});
  simulator_.Run();
  const EnergyReport report = controller_.GetEnergyReport(simulator_.now());
  EXPECT_GT(report.background_pj, 0.0);
  EXPECT_EQ(report.read_pj, 0.0);
}

TEST_F(ControllerTest, ManyRandomRequestsDrainCompletely) {
  int completed = 0;
  std::uint64_t state = 12345;
  for (int i = 0; i < 300; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t addr = (state >> 20) % config_.capacity_bytes();
    const std::uint64_t aligned = addr / 64 * 64;
    const Request::Kind kind =
        (state & 1) != 0 ? Request::Kind::kRead : Request::Kind::kWrite;
    if (!controller_.Enqueue(MakeRequest(kind, aligned, [&](const Request&) { ++completed; }))) {
      // Queue full: drain a bit then retry once.
      simulator_.RunUntil(simulator_.now() + 1000);
      ASSERT_TRUE(
          controller_.Enqueue(MakeRequest(kind, aligned, [&](const Request&) { ++completed; })));
    }
  }
  simulator_.Run();
  EXPECT_EQ(completed, 300);
  EXPECT_EQ(controller_.queue_depth(), 0u);
}

TEST_F(ControllerTest, OversizedRequestRejected) {
  Request request;
  request.kind = Request::Kind::kRead;
  request.addr = 0;
  request.size = 128;  // > access_bytes
  EXPECT_DEATH(controller_.Enqueue(std::move(request)), "access granularity");
}

}  // namespace
}  // namespace mem
}  // namespace mrm
