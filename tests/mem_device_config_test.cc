// DeviceConfig::Validate coverage: every built-in preset passes, and each
// single-field mutation that breaks a physical invariant is rejected with a
// message naming the constraint.

#include "src/mem/device_config.h"

#include <gtest/gtest.h>

namespace mrm {
namespace mem {
namespace {

TEST(DeviceConfigValidate, AllPresetsAreValid) {
  for (const char* name : {"hbm2e", "hbm3", "hbm3e", "lpddr5x", "ddr5", "gddr6"}) {
    const auto config = DeviceConfigByName(name);
    ASSERT_TRUE(config.ok()) << name;
    const Status valid = config.value().Validate();
    EXPECT_TRUE(valid.ok()) << name << ": " << valid.message();
  }
}

DeviceConfig Base() { return HBM3Config(); }

void ExpectRejected(const DeviceConfig& config, const std::string& expected_substring) {
  const Status valid = config.Validate();
  ASSERT_FALSE(valid.ok()) << "expected rejection mentioning '" << expected_substring << "'";
  EXPECT_NE(valid.message().find(expected_substring), std::string::npos) << valid.message();
}

TEST(DeviceConfigValidate, RejectsNonPositiveTrcd) {
  DeviceConfig config = Base();
  config.timings.trcd_ns = 0.0;
  ExpectRejected(config, "command timings must be positive");
}

TEST(DeviceConfigValidate, RejectsNonPositiveTras) {
  DeviceConfig config = Base();
  config.timings.tras_ns = -1.0;
  ExpectRejected(config, "command timings must be positive");
}

TEST(DeviceConfigValidate, RejectsNonPositiveTfaw) {
  DeviceConfig config = Base();
  config.timings.tfaw_ns = 0.0;
  ExpectRejected(config, "command timings must be positive");
}

TEST(DeviceConfigValidate, RejectsNonPositiveTccd) {
  DeviceConfig config = Base();
  config.timings.tccd_ns = 0.0;
  ExpectRejected(config, "command timings must be positive");
}

TEST(DeviceConfigValidate, RejectsNonPositiveTrrdTwrTrtp) {
  for (auto mutate : {+[](Timings& t) { t.trrd_ns = 0.0; }, +[](Timings& t) { t.twr_ns = 0.0; },
                      +[](Timings& t) { t.trtp_ns = -2.5; }}) {
    DeviceConfig config = Base();
    mutate(config.timings);
    ExpectRejected(config, "command timings must be positive");
  }
}

TEST(DeviceConfigValidate, RejectsTrasBelowTrcdPlusTcas) {
  DeviceConfig config = Base();
  // tRAS must be long enough to open the row and complete the first read.
  config.timings.tras_ns = config.timings.trcd_ns + config.timings.tcas_ns - 0.5;
  ExpectRejected(config, "tRAS must cover tRCD + tCAS");
}

TEST(DeviceConfigValidate, RejectsTrcBelowTrasPlusTrp) {
  DeviceConfig config = Base();
  config.timings.trc_ns = config.timings.tras_ns + config.timings.trp_ns - 0.5;
  ExpectRejected(config, "tRC must cover tRAS + tRP");
}

TEST(DeviceConfigValidate, RejectsTrefiBelowTrfc) {
  DeviceConfig config = Base();
  ASSERT_TRUE(config.needs_refresh);
  config.timings.trefi_ns = config.timings.trfc_ns - 1.0;
  ExpectRejected(config, "tREFI below tRFC");
}

TEST(DeviceConfigValidate, TrefiBelowTrfcAllowedWhenRefreshOff) {
  DeviceConfig config = Base();
  config.needs_refresh = false;
  config.timings.trefi_ns = config.timings.trfc_ns - 1.0;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(DeviceConfigValidate, EqualityBoundsAreAccepted) {
  // DDR5 sits exactly at tRAS == tRCD + tCAS and tRC == tRAS + tRP; the
  // cross-field rules must accept equality.
  DeviceConfig config = DDR5Config();
  ASSERT_DOUBLE_EQ(config.timings.tras_ns, config.timings.trcd_ns + config.timings.tcas_ns);
  ASSERT_DOUBLE_EQ(config.timings.trc_ns, config.timings.tras_ns + config.timings.trp_ns);
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace mem
}  // namespace mrm
