#include "src/mem/flash.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace mrm {
namespace mem {
namespace {

FlashConfig SmallFlash() {
  FlashConfig config;
  config.page_bytes = 4096;
  config.pages_per_block = 64;
  config.blocks = 64;
  config.overprovision = 0.125;
  config.gc_free_threshold = 4;
  config.pe_endurance = 1e5;
  return config;
}

TEST(Flash, GeometryDerivations) {
  const FlashConfig config = SmallFlash();
  EXPECT_EQ(config.physical_pages(), 64u * 64);
  EXPECT_EQ(config.logical_pages(), static_cast<std::uint64_t>(64 * 64 * 0.875));
  EXPECT_EQ(config.logical_bytes(), config.logical_pages() * 4096);
}

TEST(Flash, WriteThenRead) {
  FlashDevice device(SmallFlash());
  EXPECT_TRUE(device.WritePage(0).ok());
  EXPECT_TRUE(device.ReadPage(0).ok());
  EXPECT_EQ(device.stats().host_page_writes, 1u);
  EXPECT_EQ(device.stats().host_page_reads, 1u);
}

TEST(Flash, ReadUnwrittenFails) {
  FlashDevice device(SmallFlash());
  EXPECT_FALSE(device.ReadPage(5).ok());
}

TEST(Flash, OutOfRangeRejected) {
  FlashDevice device(SmallFlash());
  EXPECT_FALSE(device.WritePage(device.config().logical_pages()).ok());
  EXPECT_FALSE(device.ReadPage(device.config().logical_pages()).ok());
}

TEST(Flash, SequentialFillNoWriteAmplification) {
  FlashDevice device(SmallFlash());
  const std::uint64_t pages = device.config().logical_pages();
  for (std::uint64_t p = 0; p < pages; ++p) {
    ASSERT_TRUE(device.WritePage(p).ok());
  }
  EXPECT_DOUBLE_EQ(device.stats().write_amplification(), 1.0);
  EXPECT_EQ(device.stats().gc_relocations, 0u);
}

TEST(Flash, RandomOverwriteCausesWriteAmplification) {
  FlashDevice device(SmallFlash());
  const std::uint64_t pages = device.config().logical_pages();
  // Fill once, then overwrite randomly for several drive-writes.
  for (std::uint64_t p = 0; p < pages; ++p) {
    ASSERT_TRUE(device.WritePage(p).ok());
  }
  Rng rng(1);
  for (std::uint64_t i = 0; i < pages * 4; ++i) {
    ASSERT_TRUE(device.WritePage(rng.NextBounded(pages)).ok()) << "i=" << i;
  }
  EXPECT_GT(device.stats().write_amplification(), 1.2);
  EXPECT_GT(device.stats().gc_relocations, 0u);
  EXPECT_GT(device.stats().erases, 0u);
}

TEST(Flash, SequentialOverwriteLowWriteAmplification) {
  FlashDevice device(SmallFlash());
  const std::uint64_t pages = device.config().logical_pages();
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t p = 0; p < pages; ++p) {
      ASSERT_TRUE(device.WritePage(p).ok());
    }
  }
  // Sequential overwrite invalidates whole blocks: GC finds empty victims.
  EXPECT_LT(device.stats().write_amplification(), 1.1);
}

TEST(Flash, TrimReducesGcPressure) {
  FlashConfig config = SmallFlash();
  FlashDevice with_trim(config);
  FlashDevice without_trim(config);
  const std::uint64_t pages = config.logical_pages();
  Rng rng_a(7);
  Rng rng_b(7);
  for (std::uint64_t i = 0; i < pages * 3; ++i) {
    const std::uint64_t a = rng_a.NextBounded(pages);
    ASSERT_TRUE(with_trim.WritePage(a).ok());
    // Trim a recently-written page half the time (short-lived data).
    if ((i & 1) != 0) {
      with_trim.TrimPage(a);
    }
    ASSERT_TRUE(without_trim.WritePage(rng_b.NextBounded(pages)).ok());
  }
  EXPECT_LE(with_trim.stats().gc_relocations, without_trim.stats().gc_relocations);
}

TEST(Flash, EraseCountsTracked) {
  FlashDevice device(SmallFlash());
  const std::uint64_t pages = device.config().logical_pages();
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t p = 0; p < pages; ++p) {
      ASSERT_TRUE(device.WritePage(p).ok());
    }
  }
  EXPECT_GT(device.max_block_wear(), 0.0);
  EXPECT_GT(device.mean_block_wear(), 0.0);
  EXPECT_GE(device.max_block_wear(), device.mean_block_wear());
}

TEST(Flash, WearsOutAtEnduranceLimit) {
  FlashConfig config = SmallFlash();
  config.pe_endurance = 3.0;  // tiny endurance
  FlashDevice device(config);
  const std::uint64_t pages = config.logical_pages();
  Status status = Status::Ok();
  for (int round = 0; round < 40 && status.ok(); ++round) {
    for (std::uint64_t p = 0; p < pages && status.ok(); ++p) {
      status = device.WritePage(p);
    }
  }
  EXPECT_TRUE(device.worn_out());
  EXPECT_FALSE(device.WritePage(0).ok());
}

TEST(Flash, EnergyAndTimeAccumulate) {
  FlashDevice device(SmallFlash());
  ASSERT_TRUE(device.WritePage(0).ok());
  ASSERT_TRUE(device.ReadPage(0).ok());
  EXPECT_GT(device.stats().energy_pj, 0.0);
  EXPECT_GT(device.stats().busy_time_s, 0.0);
}

TEST(Flash, HousekeepingEnergyGrowsWithChurn) {
  // The E6 claim at unit scale: same bytes written, random overwrite burns
  // more energy than sequential fill because of GC + erase.
  FlashDevice sequential(SmallFlash());
  FlashDevice random(SmallFlash());
  const std::uint64_t pages = SmallFlash().logical_pages();
  Rng rng(3);
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t p = 0; p < pages; ++p) {
      ASSERT_TRUE(sequential.WritePage(p).ok());
      ASSERT_TRUE(random.WritePage(rng.NextBounded(pages)).ok());
    }
  }
  EXPECT_GT(random.stats().energy_pj, sequential.stats().energy_pj);
}

TEST(Flash, StaticWearLevelingNarrowsWearSpread) {
  // Hot/cold split: half the LPNs are overwritten constantly, the other
  // half written once and left. Without WL the cold blocks pin their low
  // erase counts; with WL the spread narrows and swaps are counted.
  auto run = [](std::uint32_t threshold) {
    FlashConfig config = SmallFlash();
    config.wear_level_threshold = threshold;
    FlashDevice device(config);
    const std::uint64_t pages = config.logical_pages();
    for (std::uint64_t p = 0; p < pages; ++p) {
      EXPECT_TRUE(device.WritePage(p).ok());
    }
    Rng rng(13);
    const std::uint64_t hot = pages / 2;
    for (std::uint64_t i = 0; i < pages * 20; ++i) {
      EXPECT_TRUE(device.WritePage(rng.NextBounded(hot)).ok());
    }
    return device;
  };
  const FlashDevice without = run(0);
  const FlashDevice with = run(8);
  EXPECT_EQ(without.stats().wear_level_swaps, 0u);
  EXPECT_GT(with.stats().wear_level_swaps, 0u);
  const double spread_without = without.max_block_wear() - 0.0;  // cold ~0
  const double spread_with = with.max_block_wear();
  // With WL the hottest block should not be (much) hotter than without,
  // and cold blocks participated (mean wear closer to max).
  EXPECT_GT(with.mean_block_wear() / spread_with,
            without.mean_block_wear() / spread_without);
}

TEST(Flash, WearLevelingDisabledByDefault) {
  FlashDevice device(SmallFlash());
  const std::uint64_t pages = device.config().logical_pages();
  for (std::uint64_t p = 0; p < pages; ++p) {
    ASSERT_TRUE(device.WritePage(p).ok());
  }
  EXPECT_EQ(device.stats().wear_level_swaps, 0u);
}

}  // namespace
}  // namespace mem
}  // namespace mrm
