// Lane scheduling and epoch batching on the channel-sharded engine
// (DESIGN.md §8 "Lane scheduling & epoch batching"):
//
//   * LaneSched — a skewed workload (one hot channel) stays bit-identical at
//     --sim-threads 1/2/4 while the measured-cost rebalancer installs plans
//     whose per-participant load imbalance is strictly lower than static
//     striding's.
//   * EpochBatch — batch limits 1/4/16 produce bit-identical results on a
//     workload that generates cross-shard effects (completions routing new
//     requests, plus a bulk Transfer), because the guard cuts every batch
//     that seals with a pending record.
//   * EpochBatchDeathTest — removing the guard (the test-only mutation hook)
//     lets a batch run past a pending record's effect and the causality
//     checks abort: the guard is load-bearing, not decorative.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/mem/device_config.h"
#include "src/mem/memory_system.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mem {
namespace {

struct SchedRunResult {
  SystemStats stats;
  std::uint64_t events = 0;
  sim::Tick end_tick = 0;
  sim::EpochSchedStats sched;
};

// Closed loop of `total` requests with `window` outstanding on a 16-channel
// HBM3E stack, plus a bulk Transfer racing the loop (cross-shard effects in
// every epoch's neighborhood). `hot_pct` percent of requests land on channel
// 0 (the address map's channel digit is the least significant line digit);
// the rest are uniform.
SchedRunResult RunSkewed(int threads, int epoch_batch, std::uint64_t total, int window,
                         int hot_pct) {
  const DeviceConfig config = HBM3EConfig();
  sim::Simulator simulator;
  MemorySystem system(&simulator, config);
  simulator.SetWorkerThreads(threads);
  simulator.SetEpochBatch(epoch_batch);

  const std::uint64_t lines = system.capacity_bytes() / config.access_bytes;
  const std::uint64_t channels = static_cast<std::uint64_t>(config.channels);
  std::mt19937_64 rng(1234);
  std::uint64_t to_issue = total;

  bool transfer_done = false;
  system.Transfer(Request::Kind::kRead, system.capacity_bytes() / 2, 128 * 1024, /*stream=*/1,
                  [&] { transfer_done = true; });

  std::function<void(const Request&)> on_complete;
  const auto issue_one = [&] {
    --to_issue;
    std::uint64_t line = rng() % lines;
    if (rng() % 100 < static_cast<std::uint64_t>(hot_pct)) {
      line -= line % channels;  // channel 0
    }
    Request request;
    request.kind = rng() % 100 < 60 ? Request::Kind::kRead : Request::Kind::kWrite;
    request.addr = line * config.access_bytes;
    request.size = static_cast<std::uint32_t>(config.access_bytes);
    request.on_complete = on_complete;
    system.Enqueue(std::move(request));
  };
  on_complete = [&](const Request&) {
    if (to_issue > 0) {
      issue_one();
    }
  };

  const int initial =
      static_cast<int>(std::min<std::uint64_t>(static_cast<std::uint64_t>(window), total));
  for (int i = 0; i < initial; ++i) {
    issue_one();
  }
  simulator.Run();

  EXPECT_TRUE(transfer_done);
  EXPECT_TRUE(system.Idle());
  SchedRunResult result;
  result.stats = system.GetStats();
  result.events = simulator.events_executed();
  result.end_tick = simulator.now();
  result.sched = simulator.epoch_sched_stats();
  return result;
}

void ExpectIdentical(const SchedRunResult& base, const SchedRunResult& run, const char* what) {
  EXPECT_EQ(base.stats.reads_completed, run.stats.reads_completed) << what;
  EXPECT_EQ(base.stats.writes_completed, run.stats.writes_completed) << what;
  EXPECT_TRUE(base.stats.read_latency_ns == run.stats.read_latency_ns) << what;
  EXPECT_TRUE(base.stats.energy == run.stats.energy) << what;
  EXPECT_TRUE(base.stats == run.stats) << what;
  EXPECT_EQ(base.events, run.events) << what;
  EXPECT_EQ(base.end_tick, run.end_tick) << what;
}

// Max/mean per-participant load when `lane_cost` is assigned by `owner`
// across `bins` participants.
double ImbalanceRatio(const std::vector<std::uint64_t>& lane_cost, const std::vector<int>& owner,
                      int bins) {
  std::vector<std::uint64_t> load(static_cast<std::size_t>(bins), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < lane_cost.size(); ++i) {
    load[static_cast<std::size_t>(owner[i])] += lane_cost[i];
    total += lane_cost[i];
  }
  const std::uint64_t max = *std::max_element(load.begin(), load.end());
  const double mean = static_cast<double>(total) / static_cast<double>(bins);
  return mean > 0.0 ? static_cast<double>(max) / mean : 0.0;
}

TEST(LaneSched, SkewedWorkloadBitIdenticalAcrossThreads) {
  const SchedRunResult base = RunSkewed(/*threads=*/1, /*epoch_batch=*/0, /*total=*/6000,
                                        /*window=*/512, /*hot_pct=*/70);
  EXPECT_GT(base.stats.reads_completed, 0u);
  EXPECT_GT(base.stats.writes_completed, 0u);
  for (const int threads : {2, 4}) {
    const SchedRunResult run = RunSkewed(threads, 0, 6000, 512, 70);
    ExpectIdentical(base, run, threads == 2 ? "threads=2" : "threads=4");
    // The schedule-derived telemetry is thread-invariant too: same epochs,
    // same per-lane costs — only the lane->participant plan may differ.
    EXPECT_EQ(base.sched.epochs, run.sched.epochs);
    EXPECT_EQ(base.sched.hub_steps, run.sched.hub_steps);
    EXPECT_EQ(base.sched.dispatches, run.sched.dispatches);
    EXPECT_EQ(base.sched.lane_cost, run.sched.lane_cost);
  }
}

TEST(LaneSched, RebalancingBeatsStaticStridingOnSkew) {
  const int threads = 4;
  const SchedRunResult run = RunSkewed(threads, /*epoch_batch=*/0, /*total=*/8000,
                                       /*window=*/512, /*hot_pct=*/70);
  ASSERT_EQ(run.sched.lane_cost.size(), 16u);
  ASSERT_EQ(run.sched.lane_owner.size(), 16u);
  EXPECT_GT(run.sched.rebalances, 0u) << "the rebalancer never installed a plan";

  // Channel 0 is hot: it must dominate per-lane cost, and the LPT plan must
  // spread the load strictly better than static striding would.
  const std::uint64_t hot = run.sched.lane_cost[0];
  for (std::size_t lane = 1; lane < run.sched.lane_cost.size(); ++lane) {
    EXPECT_GT(hot, run.sched.lane_cost[lane]) << "lane " << lane;
  }
  std::vector<int> stride_owner(run.sched.lane_cost.size());
  for (std::size_t i = 0; i < stride_owner.size(); ++i) {
    stride_owner[i] = static_cast<int>(i) % threads;
  }
  const int plan_bins =
      1 + *std::max_element(run.sched.lane_owner.begin(), run.sched.lane_owner.end());
  const double stride_ratio = ImbalanceRatio(run.sched.lane_cost, stride_owner, threads);
  const double plan_ratio = ImbalanceRatio(run.sched.lane_cost, run.sched.lane_owner, plan_bins);
  EXPECT_LT(plan_ratio, stride_ratio)
      << "plan bins=" << plan_bins << " stride max/mean=" << stride_ratio
      << " plan max/mean=" << plan_ratio;
}

TEST(EpochBatch, BitIdenticalAcrossBatchLimits) {
  // Mixed closed loop + Transfer: completions (cross-shard effects) seal out
  // of almost every epoch, so this exercises the guard constantly.
  const SchedRunResult base = RunSkewed(/*threads=*/1, /*epoch_batch=*/1, /*total=*/5000,
                                        /*window=*/256, /*hot_pct=*/30);
  EXPECT_GT(base.stats.reads_completed, 0u);
  for (const int threads : {1, 4}) {
    for (const int batch : {4, 16}) {
      const SchedRunResult run = RunSkewed(threads, batch, 5000, 256, 30);
      ExpectIdentical(base, run, "batch limits must not change results");
      // Same epoch schedule, fewer dispatches — batching happened and the
      // guard fired.
      EXPECT_EQ(base.sched.epochs, run.sched.epochs);
      EXPECT_EQ(base.sched.hub_steps, run.sched.hub_steps);
      EXPECT_LT(run.sched.dispatches, run.sched.epochs);
      EXPECT_GT(run.sched.batch_guard_stops, 0u);
    }
  }
  // Batching off: exactly one epoch per dispatch, and the guard is never
  // consulted.
  EXPECT_EQ(base.sched.dispatches, base.sched.epochs);
  EXPECT_EQ(base.sched.batch_guard_stops, 0u);
}

using EpochBatchDeathTest = ::testing::Test;

TEST(EpochBatchDeathTest, GuardRemovalViolatesCausality) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // With the guard ignored, a batch keeps running lanes past the effect tick
  // of a sealed-but-unprocessed completion record. When the record finally
  // routes its follow-up work, the arrival lands in some lane's past and the
  // engine's causality checks abort. Serial configuration: the guard logic
  // is shared with the pooled path, and a death test must not fork a
  // process that owns spinning workers.
  EXPECT_DEATH(
      {
        const DeviceConfig config = HBM3EConfig();
        sim::Simulator simulator;
        MemorySystem system(&simulator, config);
        simulator.SetEpochBatch(16);
        simulator.TestOnlyIgnoreBatchGuard(true);
        std::mt19937_64 rng(5);
        const std::uint64_t lines = system.capacity_bytes() / config.access_bytes;
        std::uint64_t to_issue = 4000;
        std::function<void(const Request&)> on_complete;
        const auto issue_one = [&] {
          --to_issue;
          Request request;
          request.kind = Request::Kind::kRead;
          request.addr = rng() % lines * config.access_bytes;
          request.size = static_cast<std::uint32_t>(config.access_bytes);
          request.on_complete = on_complete;
          system.Enqueue(std::move(request));
        };
        on_complete = [&](const Request&) {
          if (to_issue > 0) {
            issue_one();
          }
        };
        for (int i = 0; i < 256; ++i) {
          issue_one();
        }
        simulator.Run();
      },
      "");
}

}  // namespace
}  // namespace mem
}  // namespace mrm
