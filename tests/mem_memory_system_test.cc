#include "src/mem/memory_system.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace mrm {
namespace mem {
namespace {

DeviceConfig TinyConfig() {
  DeviceConfig config;
  config.name = "tiny";
  config.tech = cell::Technology::kDram;
  config.channels = 2;
  config.ranks = 1;
  config.bank_groups = 2;
  config.banks_per_group = 2;
  config.rows_per_bank = 128;
  config.row_bytes = 512;
  config.access_bytes = 64;
  config.timings = Timings{};  // defaults: 1 ns tCK etc.
  config.needs_refresh = true;
  return config;
}

class MemorySystemTest : public ::testing::Test {
 protected:
  MemorySystemTest() : simulator_(1e9), system_(&simulator_, TinyConfig()) {}

  Request MakeRead(std::uint64_t addr, std::function<void(const Request&)> cb = nullptr) {
    Request request;
    request.kind = Request::Kind::kRead;
    request.addr = addr;
    request.size = 64;
    request.on_complete = std::move(cb);
    return request;
  }

  sim::Simulator simulator_;
  MemorySystem system_;
};

TEST_F(MemorySystemTest, SingleReadCompletes) {
  bool done = false;
  sim::Tick completed_at = 0;
  system_.Enqueue(MakeRead(0, [&](const Request& r) {
    done = true;
    completed_at = r.complete_tick;
  }));
  simulator_.RunUntil(simulator_.SecondsToTicks(1e-6));
  EXPECT_TRUE(done);
  // ACT(tRCD=14) + RD(tCAS=14) + burst(2) = 30 ns minimum.
  EXPECT_GE(completed_at, 30u);
  EXPECT_LE(completed_at, 100u);
}

TEST_F(MemorySystemTest, SingleWriteCompletes) {
  bool done = false;
  Request request;
  request.kind = Request::Kind::kWrite;
  request.addr = 128;
  request.size = 64;
  request.on_complete = [&](const Request&) { done = true; };
  system_.Enqueue(std::move(request));
  simulator_.RunUntil(simulator_.SecondsToTicks(1e-6));
  EXPECT_TRUE(done);
  const SystemStats stats = system_.GetStats();
  EXPECT_EQ(stats.writes_completed, 1u);
  EXPECT_EQ(stats.bytes_written, 64u);
}

TEST_F(MemorySystemTest, AllRequestsComplete) {
  int completed = 0;
  constexpr int kRequests = 500;
  const DeviceConfig config = TinyConfig();
  for (int i = 0; i < kRequests; ++i) {
    const std::uint64_t addr =
        (static_cast<std::uint64_t>(i) * 64) % config.capacity_bytes();
    system_.Enqueue(MakeRead(addr, [&](const Request&) { ++completed; }));
  }
  simulator_.RunUntil(simulator_.SecondsToTicks(1e-3));
  EXPECT_EQ(completed, kRequests);
  EXPECT_TRUE(system_.Idle());
  EXPECT_EQ(system_.GetStats().reads_completed, static_cast<std::uint64_t>(kRequests));
}

TEST_F(MemorySystemTest, SequentialReadsHitRowBuffer) {
  // Stream one full row per channel: after the first access per row the rest
  // are row hits.
  int completed = 0;
  const DeviceConfig config = TinyConfig();
  const std::uint64_t lines = config.columns_per_row() * config.channels;
  for (std::uint64_t i = 0; i < lines; ++i) {
    system_.Enqueue(MakeRead(i * 64, [&](const Request&) { ++completed; }));
  }
  simulator_.RunUntil(simulator_.SecondsToTicks(1e-3));
  ASSERT_EQ(completed, static_cast<int>(lines));
  const SystemStats stats = system_.GetStats();
  EXPECT_EQ(stats.row_misses, static_cast<std::uint64_t>(config.channels));
  EXPECT_EQ(stats.row_hits, lines - config.channels);
  EXPECT_GT(stats.row_hit_rate(), 0.7);
}

TEST_F(MemorySystemTest, RandomReadsMissRowBuffer) {
  // Touch a different row every time within one bank: all conflicts.
  int completed = 0;
  const DeviceConfig config = TinyConfig();
  const AddressMap map(config, AddressMapPolicy::kRowBankRankColumnChannel);
  for (std::uint64_t row = 0; row < 32; ++row) {
    Location loc;
    loc.row = row;
    system_.Enqueue(MakeRead(map.Encode(loc), [&](const Request&) { ++completed; }));
  }
  simulator_.RunUntil(simulator_.SecondsToTicks(1e-3));
  ASSERT_EQ(completed, 32);
  const SystemStats stats = system_.GetStats();
  EXPECT_EQ(stats.row_hits, 0u);
  EXPECT_EQ(stats.row_misses, 32u);
}

TEST_F(MemorySystemTest, LatencyHistogramPopulated) {
  for (int i = 0; i < 10; ++i) {
    system_.Enqueue(MakeRead(static_cast<std::uint64_t>(i) * 64));
  }
  simulator_.RunUntil(simulator_.SecondsToTicks(1e-4));
  const SystemStats stats = system_.GetStats();
  EXPECT_EQ(stats.read_latency_ns.count(), 10u);
  EXPECT_GT(stats.read_latency_ns.mean(), 10.0);   // more than burst alone
  EXPECT_LT(stats.read_latency_ns.mean(), 1000.0);
}

TEST_F(MemorySystemTest, RefreshHappensUnderLoad) {
  // Drive a trickle of traffic for ~40 us: with tREFI = 3.9 us each busy
  // channel must issue REF commands that delay requests.
  for (int i = 0; i < 40; ++i) {
    const sim::Tick at = simulator_.SecondsToTicks(static_cast<double>(i) * 1e-6);
    simulator_.ScheduleAt(at, [this, i] {
      system_.Enqueue(MakeRead(static_cast<std::uint64_t>(i) * 64));
    });
  }
  simulator_.Run();
  const SystemStats stats = system_.GetStats();
  EXPECT_GT(stats.refreshes, 4u);
  EXPECT_GT(stats.energy.refresh_pj, 0.0);
}

TEST_F(MemorySystemTest, IdleRefreshEnergyChargedAnalytically) {
  // Even with no traffic the energy report charges steady-state refresh.
  simulator_.ScheduleAt(simulator_.SecondsToTicks(100e-6), [] {});
  simulator_.Run();
  EXPECT_GT(system_.GetStats().energy.refresh_pj, 0.0);
}

TEST_F(MemorySystemTest, DisableRefreshStopsRefreshes) {
  system_.DisableRefresh();
  simulator_.ScheduleAt(simulator_.SecondsToTicks(100e-6), [] {});
  simulator_.Run();
  EXPECT_EQ(system_.GetStats().refreshes, 0u);
  EXPECT_EQ(system_.GetStats().energy.refresh_pj, 0.0);
}

TEST_F(MemorySystemTest, EnergyLedgerTracksTraffic) {
  for (int i = 0; i < 64; ++i) {
    system_.Enqueue(MakeRead(static_cast<std::uint64_t>(i) * 64));
  }
  simulator_.RunUntil(simulator_.SecondsToTicks(1e-4));
  const SystemStats stats = system_.GetStats();
  EXPECT_GT(stats.energy.read_pj, 0.0);
  EXPECT_GT(stats.energy.io_pj, 0.0);
  EXPECT_GT(stats.energy.activate_pj, 0.0);
  EXPECT_GT(stats.energy.background_pj, 0.0);
  EXPECT_EQ(stats.energy.write_pj, 0.0);
  // Read energy = bits * pj/bit exactly.
  EXPECT_DOUBLE_EQ(stats.energy.read_pj,
                   64.0 * 64.0 * 8.0 * TinyConfig().energy.read_pj_per_bit);
}

TEST_F(MemorySystemTest, TransferMovesAllBytes) {
  bool done = false;
  system_.Transfer(Request::Kind::kRead, 0, 64 * 1024, /*stream=*/1, [&] { done = true; });
  simulator_.RunUntil(simulator_.SecondsToTicks(1e-2));
  EXPECT_TRUE(done);
  EXPECT_EQ(system_.GetStats().bytes_read, 64u * 1024);
  EXPECT_TRUE(system_.Idle());
}

TEST_F(MemorySystemTest, TransferUnalignedEdges) {
  bool done = false;
  // Start mid-line, end mid-line.
  system_.Transfer(Request::Kind::kWrite, 30, 100, 0, [&] { done = true; });
  simulator_.RunUntil(simulator_.SecondsToTicks(1e-4));
  EXPECT_TRUE(done);
  EXPECT_EQ(system_.GetStats().bytes_written, 100u);
}

TEST_F(MemorySystemTest, TransferBandwidthWithinPeak) {
  const DeviceConfig config = TinyConfig();
  bool done = false;
  const std::uint64_t bytes = 256 * 1024;  // half the tiny device
  system_.Transfer(Request::Kind::kRead, 0, bytes, 0, [&] { done = true; });
  simulator_.Run();
  ASSERT_TRUE(done);
  const double seconds = simulator_.now_seconds();
  const double bandwidth = static_cast<double>(bytes) / seconds;
  const double peak = config.peak_bandwidth_bytes_per_s();
  EXPECT_LE(bandwidth, peak * 1.01);
  EXPECT_GE(bandwidth, peak * 0.30);  // sequential stream should do well
}

TEST_F(MemorySystemTest, BacklogAbsorbsBursts) {
  // Enqueue far more than queue capacity at once; everything must finish.
  int completed = 0;
  constexpr int kRequests = 2000;
  for (int i = 0; i < kRequests; ++i) {
    system_.Enqueue(MakeRead(static_cast<std::uint64_t>(i % 1024) * 64,
                             [&](const Request&) { ++completed; }));
  }
  simulator_.Run();
  EXPECT_EQ(completed, kRequests);
  EXPECT_TRUE(system_.Idle());
}

TEST_F(MemorySystemTest, FcfsPolicyAlsoCompletes) {
  sim::Simulator simulator(1e9);
  MemorySystem fcfs(&simulator, TinyConfig(), SchedulerPolicy::kFcfs);
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    Request request;
    request.kind = Request::Kind::kRead;
    request.addr = static_cast<std::uint64_t>((i * 7919) % 1024) * 64;
    request.size = 64;
    request.on_complete = [&](const Request&) { ++completed; };
    fcfs.Enqueue(std::move(request));
  }
  simulator.Run();
  EXPECT_EQ(completed, 200);
}

TEST_F(MemorySystemTest, FrFcfsBeatsFcfsOnMixedPattern) {
  // Interleave row-hit streams with conflicting rows; FR-FCFS should finish
  // sooner (or at least not later).
  auto run_policy = [](SchedulerPolicy policy) {
    sim::Simulator simulator(1e9);
    MemorySystem system(&simulator, TinyConfig(), policy);
    const AddressMap map(TinyConfig(), AddressMapPolicy::kRowBankRankColumnChannel);
    for (int i = 0; i < 256; ++i) {
      Location loc;
      loc.row = (i % 4 == 0) ? 64 + static_cast<std::uint64_t>(i % 16) : 0;
      loc.column = static_cast<std::uint64_t>(i) % 8;
      Request request;
      request.kind = Request::Kind::kRead;
      request.addr = map.Encode(loc);
      request.size = 64;
      system.Enqueue(std::move(request));
    }
    simulator.Run();
    return simulator.now();
  };
  const sim::Tick frfcfs = run_policy(SchedulerPolicy::kFrFcfs);
  const sim::Tick fcfs = run_policy(SchedulerPolicy::kFcfs);
  EXPECT_LE(frfcfs, fcfs);
}

TEST_F(MemorySystemTest, WritesAndReadsInterleave) {
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    Request request;
    request.kind = (i % 2 == 0) ? Request::Kind::kRead : Request::Kind::kWrite;
    request.addr = static_cast<std::uint64_t>(i) * 64;
    request.size = 64;
    request.on_complete = [&](const Request&) { ++completed; };
    system_.Enqueue(std::move(request));
  }
  simulator_.Run();
  EXPECT_EQ(completed, 100);
  const SystemStats stats = system_.GetStats();
  EXPECT_EQ(stats.reads_completed, 50u);
  EXPECT_EQ(stats.writes_completed, 50u);
}

}  // namespace
}  // namespace mem
}  // namespace mrm
