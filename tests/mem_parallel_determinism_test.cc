// Bit-identity of the channel-sharded epoch engine (DESIGN.md §8): the same
// workload — mixed reads/writes, a concurrent bulk transfer, and enough
// outstanding requests to overflow into the backlog — must produce the same
// SystemStats (every counter, histogram bucket and picojoule), event count
// and final clock at 1, 2 and 4 worker threads as in sequential mode.

#include <cstdint>
#include <random>

#include <gtest/gtest.h>

#include "src/mem/controller.h"
#include "src/mem/device_config.h"
#include "src/mem/memory_system.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mem {
namespace {

struct RunResult {
  SystemStats stats;
  std::uint64_t events = 0;
  sim::Tick end_tick = 0;
};

// Closed loop of `total` mixed requests with `window` outstanding, plus a
// 256 KiB bulk read racing the loop. `threads` <= 0 leaves the simulator at
// its default (sequential) configuration.
RunResult RunWorkload(const DeviceConfig& config, int threads, std::uint64_t total, int window) {
  sim::Simulator simulator;
  MemorySystem system(&simulator, config);
  if (threads > 0) {
    simulator.SetWorkerThreads(threads);
  }

  const std::uint64_t lines = system.capacity_bytes() / config.access_bytes;
  std::mt19937_64 rng(99);
  std::uint64_t to_issue = total;

  bool transfer_done = false;
  system.Transfer(Request::Kind::kRead, system.capacity_bytes() / 2, 256 * 1024, /*stream=*/1,
                  [&] { transfer_done = true; });

  std::function<void(const Request&)> on_complete;
  const auto issue_one = [&] {
    --to_issue;
    Request request;
    request.kind = rng() % 100 < 60 ? Request::Kind::kRead : Request::Kind::kWrite;
    request.addr = rng() % lines * config.access_bytes;
    request.size = static_cast<std::uint32_t>(config.access_bytes);
    request.on_complete = on_complete;
    system.Enqueue(std::move(request));
  };
  on_complete = [&](const Request&) {
    if (to_issue > 0) {
      issue_one();
    }
  };

  const int initial = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(window), total));
  for (int i = 0; i < initial; ++i) {
    issue_one();
  }
  simulator.Run();

  EXPECT_TRUE(transfer_done);
  EXPECT_TRUE(system.Idle());
  RunResult result;
  result.stats = system.GetStats();
  result.events = simulator.events_executed();
  result.end_tick = simulator.now();
  return result;
}

void ExpectIdentical(const RunResult& base, const RunResult& run, int threads) {
  // Spell out the headline counters for readable failures, then require
  // exact equality of everything — histogram buckets and energy included.
  EXPECT_EQ(base.stats.reads_completed, run.stats.reads_completed) << "threads=" << threads;
  EXPECT_EQ(base.stats.writes_completed, run.stats.writes_completed) << "threads=" << threads;
  EXPECT_EQ(base.stats.row_hits, run.stats.row_hits) << "threads=" << threads;
  EXPECT_EQ(base.stats.refreshes, run.stats.refreshes) << "threads=" << threads;
  EXPECT_TRUE(base.stats.read_latency_ns == run.stats.read_latency_ns) << "threads=" << threads;
  EXPECT_TRUE(base.stats.write_latency_ns == run.stats.write_latency_ns)
      << "threads=" << threads;
  EXPECT_TRUE(base.stats.energy == run.stats.energy) << "threads=" << threads;
  EXPECT_TRUE(base.stats == run.stats) << "threads=" << threads;
  EXPECT_EQ(base.events, run.events) << "threads=" << threads;
  EXPECT_EQ(base.end_tick, run.end_tick) << "threads=" << threads;
}

TEST(ParallelDeterminism, MixedTransferBacklogWorkloadBitIdentical) {
  const DeviceConfig config = HBM3EConfig();  // 16 channels
  // window 2048 > 16 channels x 64 queue slots: the backlog overflow path
  // runs from the very first batch.
  const RunResult base = RunWorkload(config, /*threads=*/1, /*total=*/6000, /*window=*/2048);
  EXPECT_GT(base.stats.reads_completed, 0u);
  EXPECT_GT(base.stats.writes_completed, 0u);
  for (const int threads : {0, 2, 4}) {  // 0 = default sequential configuration
    ExpectIdentical(base, RunWorkload(config, threads, 6000, 2048), threads);
  }
}

TEST(ParallelDeterminism, ModerateWindowAcrossShardCounts) {
  const DeviceConfig config = HBM3EConfig();
  const RunResult base = RunWorkload(config, 1, /*total=*/4000, /*window=*/192);
  for (const int threads : {2, 4}) {
    ExpectIdentical(base, RunWorkload(config, threads, 4000, 192), threads);
  }
}

TEST(ParallelDeterminism, SingleChannelDeviceStaysSequential) {
  // channels == 1 leaves nothing to shard: the epoch driver runs the one
  // lane inline, and a worker pool must change nothing.
  DeviceConfig config = DDR5Config();
  config.channels = 1;
  const RunResult base = RunWorkload(config, /*threads=*/0, /*total=*/1500, /*window=*/96);
  ExpectIdentical(base, RunWorkload(config, /*threads=*/4, 1500, 96), 4);
}

// --- EnergyReport::Merge (deterministic stats aggregation) -----------------

TEST(EnergyReportMerge, MergeWithEmptyIsIdentity) {
  EnergyReport report;
  report.activate_pj = 1.25;
  report.read_pj = 2.5;
  report.write_pj = 0.75;
  report.io_pj = 3.125;
  report.refresh_pj = 0.5;
  report.background_pj = 7.0;
  const EnergyReport before = report;
  report.Merge(EnergyReport{});
  EXPECT_TRUE(report == before);

  EnergyReport empty;
  empty.Merge(before);
  EXPECT_TRUE(empty == before);
}

TEST(EnergyReportMerge, ComponentWiseSums) {
  EnergyReport a;
  a.activate_pj = 1.0;
  a.read_pj = 2.0;
  a.refresh_pj = 4.0;
  EnergyReport b;
  b.activate_pj = 8.0;
  b.write_pj = 16.0;
  b.background_pj = 32.0;
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.activate_pj, 9.0);
  EXPECT_DOUBLE_EQ(a.read_pj, 2.0);
  EXPECT_DOUBLE_EQ(a.write_pj, 16.0);
  EXPECT_DOUBLE_EQ(a.refresh_pj, 4.0);
  EXPECT_DOUBLE_EQ(a.background_pj, 32.0);
  EXPECT_DOUBLE_EQ(a.total_pj(), 63.0);
}

TEST(EnergyReportMerge, MergeOrderInvariantOnExactValues) {
  // Dyadic rationals are exact in binary floating point, so pairwise sums
  // are associative and any merge order yields the same report — mirroring
  // the fixed channel-order merge MemorySystem::GetStats performs.
  const auto make = [](double seed) {
    EnergyReport r;
    r.activate_pj = seed;
    r.read_pj = seed * 0.5;
    r.io_pj = seed * 0.25;
    return r;
  };
  const EnergyReport a = make(1.0);
  const EnergyReport b = make(2.0);
  const EnergyReport c = make(4.0);

  EnergyReport left;  // (a + b) + c
  left.Merge(a);
  left.Merge(b);
  left.Merge(c);
  EnergyReport right = a;  // a + (b + c)
  EnergyReport bc = b;
  bc.Merge(c);
  right.Merge(bc);
  EXPECT_TRUE(left == right);
}

}  // namespace
}  // namespace mem
}  // namespace mrm
