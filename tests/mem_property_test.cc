// Property tests for the cycle-level memory system: randomized request
// streams over every device preset must satisfy the controller's invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/mem/memory_system.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mem {
namespace {

struct PresetCase {
  std::string name;
  DeviceConfig (*make)();
};

DeviceConfig SmallHbm3() {
  DeviceConfig config = HBM3Config();
  config.channels = 2;
  config.rows_per_bank = 256;
  return config;
}

DeviceConfig SmallLpddr() {
  DeviceConfig config = LPDDR5XConfig();
  config.channels = 2;
  config.rows_per_bank = 256;
  return config;
}

DeviceConfig SmallDdr5() {
  DeviceConfig config = DDR5Config();
  config.rows_per_bank = 256;
  return config;
}

class MemPropertyTest : public ::testing::TestWithParam<PresetCase> {};

INSTANTIATE_TEST_SUITE_P(Presets, MemPropertyTest,
                         ::testing::Values(PresetCase{"hbm3", &SmallHbm3},
                                           PresetCase{"lpddr5x", &SmallLpddr},
                                           PresetCase{"ddr5", &SmallDdr5}),
                         [](const auto& param_info) { return param_info.param.name; });

TEST_P(MemPropertyTest, RandomTrafficAllCompletesExactlyOnce) {
  const DeviceConfig config = GetParam().make();
  sim::Simulator simulator(1e12);
  MemorySystem system(&simulator, config);
  Rng rng(2024);

  constexpr int kRequests = 800;
  int completions = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  for (int i = 0; i < kRequests; ++i) {
    Request request;
    request.kind = rng.NextBool(0.7) ? Request::Kind::kRead : Request::Kind::kWrite;
    request.addr = rng.NextBounded(config.capacity_bytes() / 64) * 64;
    request.size = 64;
    if (request.kind == Request::Kind::kRead) {
      read_bytes += request.size;
    } else {
      write_bytes += request.size;
    }
    request.on_complete = [&completions](const Request&) { ++completions; };
    system.Enqueue(std::move(request));
  }
  simulator.Run();
  EXPECT_EQ(completions, kRequests);
  EXPECT_TRUE(system.Idle());
  const SystemStats stats = system.GetStats();
  EXPECT_EQ(stats.bytes_read, read_bytes);
  EXPECT_EQ(stats.bytes_written, write_bytes);
  EXPECT_EQ(stats.reads_completed + stats.writes_completed,
            static_cast<std::uint64_t>(kRequests));
  // Every access either hit or missed the row buffer.
  EXPECT_EQ(stats.row_hits + stats.row_misses, static_cast<std::uint64_t>(kRequests));
}

TEST_P(MemPropertyTest, LatencyNeverBelowTimingChain) {
  const DeviceConfig config = GetParam().make();
  sim::Simulator simulator(1e12);
  MemorySystem system(&simulator, config);
  Rng rng(7);
  // Minimum possible read latency: tCAS + tBURST (row already open).
  const double min_ns = config.timings.tcas_ns + config.timings.tburst_ns;
  double observed_min = 1e18;
  int done = 0;
  for (int i = 0; i < 300; ++i) {
    Request request;
    request.kind = Request::Kind::kRead;
    request.addr = rng.NextBounded(config.capacity_bytes() / 64) * 64;
    request.size = 64;
    request.enqueue_tick = 0;
    request.on_complete = [&](const Request& r) {
      ++done;
      const double latency_ns =
          simulator.TicksToSeconds(r.complete_tick - r.enqueue_tick) * 1e9;
      observed_min = std::min(observed_min, latency_ns);
    };
    system.Enqueue(std::move(request));
  }
  simulator.Run();
  ASSERT_EQ(done, 300);
  EXPECT_GE(observed_min, min_ns * 0.999);
}

TEST_P(MemPropertyTest, EnergyMonotoneInTraffic) {
  const DeviceConfig config = GetParam().make();
  auto energy_for = [&](int requests) {
    sim::Simulator simulator(1e12);
    MemorySystem system(&simulator, config);
    Rng rng(3);
    for (int i = 0; i < requests; ++i) {
      Request request;
      request.kind = Request::Kind::kRead;
      request.addr = rng.NextBounded(config.capacity_bytes() / 64) * 64;
      request.size = 64;
      system.Enqueue(std::move(request));
    }
    simulator.Run();
    const EnergyReport energy = system.GetStats().energy;
    // Compare dynamic energy only (background scales with duration).
    return energy.read_pj + energy.activate_pj + energy.io_pj;
  };
  EXPECT_LT(energy_for(50), energy_for(200));
}

TEST_P(MemPropertyTest, FrFcfsNeverSlowerThanFcfsOnRandomTraces) {
  const DeviceConfig config = GetParam().make();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto run = [&](SchedulerPolicy policy) {
      sim::Simulator simulator(1e12);
      MemorySystem system(&simulator, config, policy);
      Rng rng(seed);
      for (int i = 0; i < 400; ++i) {
        Request request;
        request.kind = Request::Kind::kRead;
        // Mix of streaming and conflicting rows.
        const std::uint64_t base = (i % 5 == 0) ? rng.NextBounded(64) * 4096 : 0;
        request.addr = (base + static_cast<std::uint64_t>(i) * 64) %
                       (config.capacity_bytes() / 64 * 64);
        request.size = 64;
        system.Enqueue(std::move(request));
      }
      simulator.Run();
      return simulator.now();
    };
    EXPECT_LE(run(SchedulerPolicy::kFrFcfs), run(SchedulerPolicy::kFcfs)) << "seed " << seed;
  }
}

TEST_P(MemPropertyTest, DeterministicAcrossRuns) {
  const DeviceConfig config = GetParam().make();
  auto run = [&] {
    sim::Simulator simulator(1e12);
    MemorySystem system(&simulator, config);
    Rng rng(99);
    for (int i = 0; i < 300; ++i) {
      Request request;
      request.kind = rng.NextBool(0.5) ? Request::Kind::kRead : Request::Kind::kWrite;
      request.addr = rng.NextBounded(config.capacity_bytes() / 64) * 64;
      request.size = 64;
      system.Enqueue(std::move(request));
    }
    simulator.Run();
    return simulator.now();
  };
  const sim::Tick first = run();
  EXPECT_EQ(first, run());
}

TEST_P(MemPropertyTest, BulkTransfersOfOddSizesConserveBytes) {
  const DeviceConfig config = GetParam().make();
  sim::Simulator simulator(1e12);
  MemorySystem system(&simulator, config);
  Rng rng(5);
  std::uint64_t expected = 0;
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t bytes = 1 + rng.NextBounded(5000);
    const std::uint64_t addr = rng.NextBounded(config.capacity_bytes() - 8192);
    expected += bytes;
    system.Transfer(Request::Kind::kRead, addr, bytes, 0, [&done] { ++done; });
  }
  simulator.Run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(system.GetStats().bytes_read, expected);
}

}  // namespace
}  // namespace mem
}  // namespace mrm
