// Speculative lane execution with deterministic rollback (DESIGN.md §8
// "Speculative horizons & rollback"):
//
//   * Speculation — a skewed closed loop plus a racing Transfer stays
//     bit-identical at --sim-threads 1/2/4 whether speculation is off or on
//     (any window), while the speculative runs take >= 100 rollbacks: the
//     conflict detector and replay path are exercised hard, not grazed.
//   * Fault workloads keep the same guarantee: keyed fault rolls re-derive
//     identical decisions across a rollback, so SystemStats *and* the
//     injector's RAS ledger match the conservative run bit-for-bit.
//   * SpeculationDeathTest — disabling the conflict check (the test-only
//     mutation hook) lets a late cross-shard arrival land inside a lane's
//     speculated past and the engine's causality checks abort: rollback is
//     load-bearing, not decorative.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/fault_config.h"
#include "src/fault/fault_injector.h"
#include "src/mem/device_config.h"
#include "src/mem/memory_system.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mem {
namespace {

struct SpecRunResult {
  SystemStats stats;
  SpecStats spec;
  fault::FaultStats faults;
  sim::EpochSchedStats sched;
  std::uint64_t events = 0;
  sim::Tick end_tick = 0;
};

// Closed loop of `total` requests with `window` outstanding on a 16-channel
// HBM3E stack plus a bulk Transfer racing the loop — the LaneSched workload,
// with a speculation window dialed in. `hot_pct` percent of requests hit
// channel 0, so the other fifteen lanes alternate between going quiescent
// (and speculating ahead) and being hit by late routed completions (and
// rolling back).
SpecRunResult RunSpec(int threads, sim::Tick spec_window, std::uint64_t total, int window,
                      int hot_pct, const fault::FaultConfig* faults = nullptr) {
  const DeviceConfig config = HBM3EConfig();
  sim::Simulator simulator;
  MemorySystem system(&simulator, config);
  simulator.SetWorkerThreads(threads);
  simulator.SetSpeculationWindow(spec_window);
  fault::FaultInjector injector(faults != nullptr ? *faults : fault::FaultConfig());
  if (faults != nullptr) {
    system.SetFaultInjector(&injector);
  }

  const std::uint64_t lines = system.capacity_bytes() / config.access_bytes;
  const std::uint64_t channels = static_cast<std::uint64_t>(config.channels);
  std::mt19937_64 rng(1234);
  std::uint64_t to_issue = total;

  bool transfer_done = false;
  system.Transfer(Request::Kind::kRead, system.capacity_bytes() / 2, 128 * 1024, /*stream=*/1,
                  [&] { transfer_done = true; });

  std::function<void(const Request&)> on_complete;
  const auto issue_one = [&] {
    --to_issue;
    std::uint64_t line = rng() % lines;
    if (rng() % 100 < static_cast<std::uint64_t>(hot_pct)) {
      line -= line % channels;  // channel 0
    }
    Request request;
    request.kind = rng() % 100 < 60 ? Request::Kind::kRead : Request::Kind::kWrite;
    request.addr = line * config.access_bytes;
    request.size = static_cast<std::uint32_t>(config.access_bytes);
    request.on_complete = on_complete;
    system.Enqueue(std::move(request));
  };
  on_complete = [&](const Request&) {
    if (to_issue > 0) {
      issue_one();
    }
  };

  const int initial =
      static_cast<int>(std::min<std::uint64_t>(static_cast<std::uint64_t>(window), total));
  for (int i = 0; i < initial; ++i) {
    issue_one();
  }
  simulator.Run();

  EXPECT_TRUE(transfer_done);
  EXPECT_TRUE(system.Idle());
  SpecRunResult result;
  result.stats = system.GetStats();
  result.spec = system.GetSpecStats();
  result.faults = injector.stats();
  result.sched = simulator.epoch_sched_stats();
  result.events = simulator.events_executed();
  result.end_tick = simulator.now();
  return result;
}

// Everything the paper-facing statistics report must be untouched by
// speculation. events_executed is deliberately NOT compared against a
// conservative run: rolled-back lane work is (correctly) counted twice.
void ExpectSameResults(const SpecRunResult& base, const SpecRunResult& run, const char* what) {
  EXPECT_EQ(base.stats.reads_completed, run.stats.reads_completed) << what;
  EXPECT_EQ(base.stats.writes_completed, run.stats.writes_completed) << what;
  EXPECT_TRUE(base.stats.read_latency_ns == run.stats.read_latency_ns) << what;
  EXPECT_TRUE(base.stats.energy == run.stats.energy) << what;
  EXPECT_TRUE(base.stats == run.stats) << what;
  EXPECT_EQ(base.end_tick, run.end_tick) << what;
}

TEST(Speculation, BitIdenticalAcrossThreadsAndWindows) {
  const SpecRunResult base = RunSpec(/*threads=*/1, /*spec_window=*/0, /*total=*/6000,
                                     /*window=*/512, /*hot_pct=*/70);
  EXPECT_GT(base.stats.reads_completed, 0u);
  EXPECT_GT(base.stats.writes_completed, 0u);
  EXPECT_EQ(base.spec.rollbacks, 0u);
  EXPECT_EQ(base.spec.spec_commits, 0u);
  EXPECT_EQ(base.sched.spec_epochs, 0u);

  for (const sim::Tick spec_window : {sim::Tick{256}, sim::Tick{4096}}) {
    SpecRunResult first;
    for (const int threads : {1, 2, 4}) {
      const SpecRunResult run = RunSpec(threads, spec_window, 6000, 512, 70);
      ExpectSameResults(base, run, "speculation must not change results");
      EXPECT_GT(run.sched.spec_epochs, 0u) << "speculative horizons never engaged";
      EXPECT_GT(run.spec.spec_commits, 0u) << "no speculated span ever committed";
      if (threads == 1) {
        first = run;
      } else {
        // The speculation schedule is derived from simulation state alone,
        // so its telemetry is thread-invariant too — same rollbacks, same
        // replayed work, same suppressed duplicates.
        EXPECT_TRUE(first.spec == run.spec) << "threads=" << threads;
        EXPECT_EQ(first.events, run.events) << "threads=" << threads;
      }
    }
  }

  // The short window must exercise the rollback path hard: late routed
  // completions land inside speculated spans over and over, and the
  // per-span backoff keeps re-arming because commits keep succeeding.
  const SpecRunResult churn = RunSpec(/*threads=*/4, /*spec_window=*/256, 6000, 512, 70);
  EXPECT_GE(churn.spec.rollbacks, 100u);
  EXPECT_GT(churn.spec.rolled_back_events, 0u);
}

TEST(Speculation, FaultWorkloadBitIdentical) {
  // Transient fabric faults: stalled routes re-time arrivals, dropped
  // completions re-deliver records — both interact with speculated spans.
  fault::FaultConfig faults;
  faults.seed = 42;
  faults.channel_stall_prob = 0.02;
  faults.drop_completion_prob = 0.02;
  ASSERT_TRUE(faults.Validate().ok());

  const SpecRunResult base = RunSpec(/*threads=*/1, /*spec_window=*/0, /*total=*/4000,
                                     /*window=*/256, /*hot_pct=*/50, &faults);
  EXPECT_GT(base.faults.channel_stalls, 0u);
  EXPECT_GT(base.faults.dropped_completions, 0u);

  for (const int threads : {1, 2, 4}) {
    const SpecRunResult run = RunSpec(threads, /*spec_window=*/4096, 4000, 256, 50, &faults);
    ExpectSameResults(base, run, "speculation must not change fault workloads");
    // Keyed rolls re-derive the same decisions across replay: the RAS ledger
    // is bit-identical, not merely statistically similar.
    EXPECT_TRUE(base.faults == run.faults) << "threads=" << threads;
    EXPECT_GT(run.spec.rollbacks, 0u);
  }
}

using SpeculationDeathTest = ::testing::Test;

TEST(SpeculationDeathTest, ConflictCheckRemovalViolatesCausality) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // With conflict detection ignored, a lane keeps its speculated span when a
  // late cross-shard arrival lands inside it. The arrival sits in the lane's
  // past, so the next admission drives the lane clock backwards and the
  // engine's causality checks abort. Serial configuration: a death test must
  // not fork a process that owns spinning workers.
  EXPECT_DEATH(
      {
        const DeviceConfig config = HBM3EConfig();
        sim::Simulator simulator;
        MemorySystem system(&simulator, config);
        simulator.SetSpeculationWindow(4096);
        system.TestOnlyIgnoreConflictCheck(true);
        std::mt19937_64 rng(5);
        const std::uint64_t lines = system.capacity_bytes() / config.access_bytes;
        const std::uint64_t channels = static_cast<std::uint64_t>(config.channels);
        std::uint64_t to_issue = 4000;
        std::function<void(const Request&)> on_complete;
        const auto issue_one = [&] {
          --to_issue;
          std::uint64_t line = rng() % lines;
          if (rng() % 100 < 70) {
            line -= line % channels;  // hot channel 0
          }
          Request request;
          request.kind = Request::Kind::kRead;
          request.addr = line * config.access_bytes;
          request.size = static_cast<std::uint32_t>(config.access_bytes);
          request.on_complete = on_complete;
          system.Enqueue(std::move(request));
        };
        on_complete = [&](const Request&) {
          if (to_issue > 0) {
            issue_one();
          }
        };
        for (int i = 0; i < 256; ++i) {
          issue_one();
        }
        simulator.Run();
      },
      "");
}

}  // namespace
}  // namespace mem
}  // namespace mrm
