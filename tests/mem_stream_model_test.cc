#include "src/mem/stream_model.h"

#include <gtest/gtest.h>

#include "src/mem/memory_system.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mem {
namespace {

TEST(StreamModel, EffectiveBelowPeak) {
  for (const auto& config : {HBM3Config(), HBM3EConfig(), LPDDR5XConfig(), DDR5Config()}) {
    const StreamModel model(config);
    EXPECT_LT(model.EffectiveBandwidth(), config.peak_bandwidth_bytes_per_s() * 1.0001)
        << config.name;
    EXPECT_GT(model.EffectiveBandwidth(), config.peak_bandwidth_bytes_per_s() * 0.5)
        << config.name;
  }
}

TEST(StreamModel, RefreshBlackoutMatchesTimings) {
  const DeviceConfig config = HBM3Config();
  const StreamModel model(config);
  EXPECT_NEAR(model.RefreshBlackoutFraction(),
              config.timings.trfc_ns / config.timings.trefi_ns, 1e-12);
}

TEST(StreamModel, NoRefreshNoBlackout) {
  DeviceConfig config = HBM3Config();
  config.needs_refresh = false;
  const StreamModel model(config);
  EXPECT_EQ(model.RefreshBlackoutFraction(), 0.0);
}

TEST(StreamModel, NewPresetsValidateAndOrder) {
  for (const auto& config : {HBM2EConfig(), GDDR6Config()}) {
    EXPECT_TRUE(config.Validate().ok()) << config.name;
  }
  // Generation ordering: HBM2e < HBM3 on bandwidth; GDDR6 between DDR5 and
  // LPDDR-package class per device.
  EXPECT_LT(StreamModel(HBM2EConfig()).EffectiveBandwidth(),
            StreamModel(HBM3Config()).EffectiveBandwidth());
  EXPECT_GT(StreamModel(GDDR6Config()).EffectiveBandwidth(),
            StreamModel(DDR5Config()).EffectiveBandwidth());
}

TEST(StreamModel, PresetLookupCoversAllNames) {
  for (const char* name : {"hbm2e", "hbm3", "hbm3e", "lpddr5x", "ddr5", "gddr6"}) {
    EXPECT_TRUE(DeviceConfigByName(name).ok()) << name;
  }
  EXPECT_FALSE(DeviceConfigByName("hbm9").ok());
}

TEST(StreamModel, Hbm3ePreserveBandwidthOrdering) {
  // Presets must order HBM3e > HBM3 > LPDDR5X > DDR5 on bandwidth.
  const double hbm3e = StreamModel(HBM3EConfig()).EffectiveBandwidth();
  const double hbm3 = StreamModel(HBM3Config()).EffectiveBandwidth();
  const double lpddr = StreamModel(LPDDR5XConfig()).EffectiveBandwidth();
  const double ddr5 = StreamModel(DDR5Config()).EffectiveBandwidth();
  EXPECT_GT(hbm3e, hbm3);
  EXPECT_GT(hbm3, lpddr);
  EXPECT_GT(lpddr, ddr5);
}

TEST(StreamModel, HbmClassBandwidthOrderOfMagnitude) {
  // An HBM3-class stack delivers several hundred GB/s.
  const double bw = StreamModel(HBM3Config()).EffectiveBandwidth();
  EXPECT_GT(bw, 400e9);
  EXPECT_LT(bw, 2000e9);
}

TEST(StreamModel, EstimateScalesLinearly) {
  const StreamModel model(HBM3Config());
  const StreamEstimate one = model.EstimateSequential(1ull << 30, true);
  const StreamEstimate two = model.EstimateSequential(2ull << 30, true);
  EXPECT_NEAR(two.seconds, 2.0 * one.seconds, one.seconds * 1e-9);
  EXPECT_NEAR(two.energy_pj, 2.0 * one.energy_pj, one.energy_pj * 1e-9);
}

TEST(StreamModel, WriteEnergyDiffersFromRead) {
  DeviceConfig config = HBM3Config();
  config.energy.write_pj_per_bit = config.energy.read_pj_per_bit * 2.0;
  const StreamModel model(config);
  const StreamEstimate rd = model.EstimateSequential(1 << 20, true);
  const StreamEstimate wr = model.EstimateSequential(1 << 20, false);
  EXPECT_GT(wr.energy_pj, rd.energy_pj);
}

TEST(StreamModel, AgreesWithCycleSimulatorOnSequentialRead) {
  // The analytic model must predict the cycle simulator's sequential-read
  // bandwidth within 25% — this validates using it for bulk traffic.
  DeviceConfig config;
  config.name = "validation";
  config.channels = 2;
  config.ranks = 1;
  config.bank_groups = 2;
  config.banks_per_group = 2;
  config.rows_per_bank = 512;
  config.row_bytes = 1024;
  config.access_bytes = 64;

  sim::Simulator simulator(1e9);
  MemorySystem system(&simulator, config);
  const std::uint64_t bytes = 2ull << 20;
  bool done = false;
  system.Transfer(Request::Kind::kRead, 0, bytes, 0, [&] { done = true; });
  simulator.Run();
  ASSERT_TRUE(done);
  const double measured = static_cast<double>(bytes) / simulator.now_seconds();

  const double predicted = StreamModel(config).EffectiveBandwidth();
  EXPECT_NEAR(measured / predicted, 1.0, 0.25)
      << "measured " << measured << " predicted " << predicted;
}

}  // namespace
}  // namespace mem
}  // namespace mrm
