#include "src/mrm/mrm_config.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/units.h"

namespace mrm {
namespace mrmcore {
namespace {

MrmDeviceConfig Valid() {
  MrmDeviceConfig config;
  config.name = "cfg-mrm";
  config.channels = 2;
  config.zones = 8;
  config.zone_blocks = 16;
  config.block_bytes = 4096;
  config.default_retention_s = kHour;
  return config;
}

// Every rule must reject with a diagnostic naming the offending field — a
// misconfiguration should point at the field, not at "the config".
void ExpectRejects(const MrmDeviceConfig& config, const std::string& expected_fragment) {
  const Status status = config.Validate();
  ASSERT_FALSE(status.ok()) << "expected rejection mentioning '" << expected_fragment << "'";
  EXPECT_NE(status.message().find(expected_fragment), std::string::npos)
      << "diagnostic was: " << status.message();
}

TEST(MrmConfigTest, ValidConfigPasses) {
  EXPECT_TRUE(Valid().Validate().ok());
  // The stock presets must stay valid too.
  EXPECT_TRUE(MrmDeviceConfig().Validate().ok());
}

TEST(MrmConfigTest, RejectsNonPositiveGeometry) {
  MrmDeviceConfig config = Valid();
  config.channels = 0;
  ExpectRejects(config, "channels");
  config = Valid();
  config.zones = 0;
  ExpectRejects(config, "zones");
  config = Valid();
  config.zone_blocks = 0;
  ExpectRejects(config, "zone_blocks");
  config = Valid();
  config.block_bytes = 0;
  ExpectRejects(config, "block_bytes");
}

TEST(MrmConfigTest, RejectsBadTimingAndEnergy) {
  MrmDeviceConfig config = Valid();
  config.read_latency_ns = -1.0;
  ExpectRejects(config, "read latency");
  config = Valid();
  config.channel_read_bw_bytes_per_s = 0.0;
  ExpectRejects(config, "bandwidths");
  config = Valid();
  config.channel_write_bw_ref_bytes_per_s = -1.0;
  ExpectRejects(config, "bandwidths");
  config = Valid();
  config.io_pj_per_bit = -0.1;
  ExpectRejects(config, "energy");
  config = Valid();
  config.background_mw = -5.0;
  ExpectRejects(config, "energy");
}

TEST(MrmConfigTest, RejectsBadRetention) {
  MrmDeviceConfig config = Valid();
  config.default_retention_s = 0.0;
  ExpectRejects(config, "default retention must be positive");
  config = Valid();
  config.retention_floor_s = -1.0;
  ExpectRejects(config, "retention bounds must be non-negative");
  config = Valid();
  config.retention_floor_s = 2.0 * kHour;
  config.retention_cap_s = kHour;
  config.default_retention_s = kHour;
  ExpectRejects(config, "floor > cap");
  config = Valid();
  config.retention_floor_s = 2.0 * kHour;
  config.default_retention_s = kHour;
  ExpectRejects(config, "below the retention floor");
  config = Valid();
  config.retention_cap_s = kHour / 2.0;
  config.default_retention_s = kHour;
  ExpectRejects(config, "above the retention cap");
}

TEST(MrmConfigTest, AcceptsRetentionBoundsThatBracketTheDefault) {
  MrmDeviceConfig config = Valid();
  config.retention_floor_s = kHour / 2.0;
  config.retention_cap_s = 2.0 * kHour;
  EXPECT_TRUE(config.Validate().ok());
  // Zero means unbounded on that side.
  config.retention_cap_s = 0.0;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(MrmConfigTest, RejectsBadEcc) {
  MrmDeviceConfig config = Valid();
  config.ecc_codeword_bits = config.block_bytes * 8 + 1;
  ExpectRejects(config, "ECC codeword larger than the block");
  config = Valid();
  config.ecc_codeword_bits = 64;
  config.ecc_t = 64;
  ExpectRejects(config, "ECC strength");
}

TEST(MrmConfigTest, EccPayloadDefaultsToWholeBlock) {
  MrmDeviceConfig config = Valid();
  EXPECT_EQ(config.ecc_payload_bits(), config.block_bits());
  config.ecc_codeword_bits = 4096;
  EXPECT_EQ(config.ecc_payload_bits(), 4096u);
}

}  // namespace
}  // namespace mrmcore
}  // namespace mrm
