#include "src/mrm/control_plane.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mrmcore {
namespace {

MrmDeviceConfig SmallMrm() {
  MrmDeviceConfig config;
  config.name = "cp-mrm";
  config.technology = cell::Technology::kSttMram;
  config.channels = 2;
  config.zones = 16;
  config.zone_blocks = 8;
  config.block_bytes = 4096;
  config.channel_read_bw_bytes_per_s = 10e9;
  config.channel_write_bw_ref_bytes_per_s = 10e9;
  config.default_retention_s = kHour;
  return config;
}

ControlPlaneOptions FastScrubOptions() {
  ControlPlaneOptions options;
  options.scrub_period_s = 10.0;
  options.retention_margin = 1.25;
  return options;
}

class ControlPlaneTest : public ::testing::Test {
 protected:
  ControlPlaneTest()
      : simulator_(1e9),
        device_(&simulator_, SmallMrm()),
        plane_(&simulator_, &device_, FastScrubOptions()) {}

  void AdvanceTo(double seconds) {
    simulator_.RunUntil(simulator_.SecondsToTicks(seconds));
  }

  sim::Simulator simulator_;
  MrmDevice device_;
  ControlPlane plane_;
};

TEST_F(ControlPlaneTest, AppendReturnsLiveLogicalBlock) {
  auto id = plane_.Append(kHour);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(plane_.Alive(id.value()));
  EXPECT_EQ(plane_.live_blocks(), 1u);
  EXPECT_EQ(plane_.stats().appends, 1u);
}

TEST_F(ControlPlaneTest, ReadLiveBlockSucceeds) {
  auto id = plane_.Append(kHour);
  ASSERT_TRUE(id.ok());
  bool ok_flag = false;
  ASSERT_TRUE(plane_.Read(id.value(), [&](bool ok) { ok_flag = ok; }).ok());
  AdvanceTo(1.0);
  EXPECT_TRUE(ok_flag);
}

TEST_F(ControlPlaneTest, ReadUnknownIdFails) {
  EXPECT_FALSE(plane_.Read(999, nullptr).ok());
}

TEST_F(ControlPlaneTest, FreeReleasesBlock) {
  auto id = plane_.Append(kHour);
  ASSERT_TRUE(id.ok());
  plane_.Free(id.value());
  EXPECT_FALSE(plane_.Alive(id.value()));
  EXPECT_EQ(plane_.live_blocks(), 0u);
  EXPECT_FALSE(plane_.Read(id.value(), nullptr).ok());
}

TEST_F(ControlPlaneTest, FreeUnknownIsNoOp) {
  plane_.Free(12345);
  EXPECT_EQ(plane_.live_blocks(), 0u);
}

TEST_F(ControlPlaneTest, DcmRetentionCoversLifetimeWithMargin) {
  const double retention = plane_.RetentionForLifetime(1000.0);
  EXPECT_GE(retention, 1000.0 * 1.25 * 0.999);
}

TEST_F(ControlPlaneTest, ShortLifetimesFlooredByScrubPeriod) {
  // Lifetimes shorter than the scrub machinery can track get a floor.
  const double retention = plane_.RetentionForLifetime(0.001);
  EXPECT_GE(retention, 2.0 * 10.0);  // 2 x scrub period
}

TEST_F(ControlPlaneTest, CustomPolicyOverridesDcm) {
  ControlPlaneOptions options = FastScrubOptions();
  options.retention_policy = MakeFixedPolicy(kDay);
  sim::Simulator simulator(1e9);
  MrmDevice device(&simulator, SmallMrm());
  ControlPlane plane(&simulator, &device, options);
  EXPECT_DOUBLE_EQ(plane.RetentionForLifetime(1.0), kDay);
  EXPECT_DOUBLE_EQ(plane.RetentionForLifetime(1e6), kDay);
}

TEST_F(ControlPlaneTest, ZonesFillThenRotate) {
  // 8 blocks per zone: the 9th append must move to a second zone.
  std::vector<LogicalId> ids;
  for (int i = 0; i < 9; ++i) {
    auto id = plane_.Append(kHour);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  EXPECT_EQ(device_.zone_info(0).state, ZoneState::kFull);
  EXPECT_EQ(device_.zone_info(1).state, ZoneState::kOpen);
}

TEST_F(ControlPlaneTest, ExpiredSoftStateDropsAndNotifies) {
  std::vector<LogicalId> lost;
  plane_.SetLossHandler([&](LogicalId id) { lost.push_back(id); });
  // Lifetime of 30 s, scrub period 10 s: by t=50 the block expired and a
  // scrub pass dropped it.
  auto id = plane_.Append(30.0);
  ASSERT_TRUE(id.ok());
  AdvanceTo(60.0);
  EXPECT_FALSE(plane_.Alive(id.value()));
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], id.value());
  EXPECT_GE(plane_.stats().drops, 1u);
}

TEST_F(ControlPlaneTest, LongLivedDataSurvivesScrubPasses) {
  auto id = plane_.Append(kDay);
  ASSERT_TRUE(id.ok());
  AdvanceTo(300.0);  // 30 scrub passes
  EXPECT_TRUE(plane_.Alive(id.value()));
}

TEST_F(ControlPlaneTest, ScrubRewritesDataApproachingDeadline) {
  // Force a pessimistic code so the ECC-safe age is far shorter than the
  // programmed retention -> scrubber must migrate the still-needed block.
  ControlPlaneOptions options = FastScrubOptions();
  options.ecc.payload_bits = 8ull * 4096;
  options.ecc.t = 1;  // nearly no correction
  options.target_uber = 1e-18;
  sim::Simulator simulator(1e9);
  MrmDevice device(&simulator, SmallMrm());
  ControlPlane plane(&simulator, &device, options);

  auto id = plane.Append(kHour);
  ASSERT_TRUE(id.ok());
  simulator.RunUntil(simulator.SecondsToTicks(kHour / 2));
  EXPECT_TRUE(plane.Alive(id.value()));
  EXPECT_GT(plane.stats().scrub_rewrites, 0u);
  EXPECT_GT(plane.stats().scrub_bytes, 0u);
}

TEST_F(ControlPlaneTest, FullyDeadZonesReclaimed) {
  std::vector<LogicalId> ids;
  for (int i = 0; i < 8; ++i) {  // fill zone 0 exactly
    auto id = plane_.Append(kHour);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  ASSERT_EQ(device_.zone_info(0).state, ZoneState::kFull);
  for (LogicalId id : ids) {
    plane_.Free(id);
  }
  EXPECT_EQ(device_.zone_info(0).state, ZoneState::kEmpty);
  EXPECT_GE(plane_.stats().zones_reclaimed, 1u);
}

TEST_F(ControlPlaneTest, WearLevelingPrefersLeastWornZone) {
  // Fill and free zone 0 twice so it accumulates wear, then check the next
  // allocation goes to a fresh zone.
  for (int round = 0; round < 2; ++round) {
    std::vector<LogicalId> ids;
    for (int i = 0; i < 8; ++i) {
      auto id = plane_.Append(kHour);
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    for (LogicalId id : ids) {
      plane_.Free(id);
    }
  }
  // Allocate once more; wear-levelling must pick a zone with zero wear.
  auto id = plane_.Append(kHour);
  ASSERT_TRUE(id.ok());
  std::uint32_t used_zone = 0;
  for (std::uint32_t z = 0; z < SmallMrm().zones; ++z) {
    if (device_.zone_info(z).state == ZoneState::kOpen) {
      used_zone = z;
      break;
    }
  }
  EXPECT_EQ(device_.zone_info(used_zone).wear_cycles, 1u);
}

TEST_F(ControlPlaneTest, AllocationFailureWhenAllZonesBusy) {
  // Fill every zone without freeing; eventually Append must fail cleanly.
  const MrmDeviceConfig config = SmallMrm();
  const std::uint64_t total = static_cast<std::uint64_t>(config.zones) * config.zone_blocks;
  for (std::uint64_t i = 0; i < total; ++i) {
    ASSERT_TRUE(plane_.Append(kDay).ok()) << i;
  }
  EXPECT_FALSE(plane_.Append(kDay).ok());
  EXPECT_GE(plane_.stats().allocation_failures, 1u);
}

}  // namespace
}  // namespace mrmcore
}  // namespace mrm
