#include "src/mrm/dcm.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace mrm {
namespace mrmcore {
namespace {

TEST(Dcm, DcmPolicyScalesWithLifetime) {
  const RetentionPolicy policy = MakeDcmPolicy(1.5, 60.0);
  EXPECT_DOUBLE_EQ(policy(1000.0), 1500.0);
  EXPECT_DOUBLE_EQ(policy(kDay), kDay * 1.5);
}

TEST(Dcm, DcmPolicyAppliesFloor) {
  const RetentionPolicy policy = MakeDcmPolicy(1.5, 60.0);
  EXPECT_DOUBLE_EQ(policy(1.0), 90.0);   // floored at 60 then margined
  EXPECT_DOUBLE_EQ(policy(0.0), 90.0);
}

TEST(Dcm, FixedPolicyIgnoresLifetime) {
  const RetentionPolicy policy = MakeFixedPolicy(kDay);
  EXPECT_DOUBLE_EQ(policy(1.0), kDay);
  EXPECT_DOUBLE_EQ(policy(kYear), kDay);
}

TEST(Dcm, TwoClassPolicySplitsAtThreshold) {
  const RetentionPolicy policy = MakeTwoClassPolicy(kHour, 30.0 * kDay, 2.0 * kHour);
  EXPECT_DOUBLE_EQ(policy(60.0), kHour);          // short class
  EXPECT_DOUBLE_EQ(policy(2.0 * kHour), kHour);   // boundary inclusive
  EXPECT_DOUBLE_EQ(policy(kDay), 30.0 * kDay);    // long class
}

TEST(Dcm, DcmNeverUnderProvisionsVersusHint) {
  const RetentionPolicy policy = MakeDcmPolicy(1.25, 120.0);
  for (double lifetime : {0.1, 10.0, 300.0, kHour, kDay, 30.0 * kDay}) {
    EXPECT_GE(policy(lifetime), lifetime) << lifetime;
  }
}

}  // namespace
}  // namespace mrmcore
}  // namespace mrm
