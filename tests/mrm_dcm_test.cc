#include "src/mrm/dcm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/units.h"

namespace mrm {
namespace mrmcore {
namespace {

TEST(Dcm, DcmPolicyScalesWithLifetime) {
  const RetentionPolicy policy = MakeDcmPolicy(1.5, 60.0);
  EXPECT_DOUBLE_EQ(policy(1000.0), 1500.0);
  EXPECT_DOUBLE_EQ(policy(kDay), kDay * 1.5);
}

TEST(Dcm, DcmPolicyAppliesFloor) {
  const RetentionPolicy policy = MakeDcmPolicy(1.5, 60.0);
  EXPECT_DOUBLE_EQ(policy(1.0), 90.0);   // floored at 60 then margined
  EXPECT_DOUBLE_EQ(policy(0.0), 90.0);
}

TEST(Dcm, FixedPolicyIgnoresLifetime) {
  const RetentionPolicy policy = MakeFixedPolicy(kDay);
  EXPECT_DOUBLE_EQ(policy(1.0), kDay);
  EXPECT_DOUBLE_EQ(policy(kYear), kDay);
}

TEST(Dcm, TwoClassPolicySplitsAtThreshold) {
  const RetentionPolicy policy = MakeTwoClassPolicy(kHour, 30.0 * kDay, 2.0 * kHour);
  EXPECT_DOUBLE_EQ(policy(60.0), kHour);          // short class
  EXPECT_DOUBLE_EQ(policy(2.0 * kHour), kHour);   // boundary inclusive
  EXPECT_DOUBLE_EQ(policy(kDay), 30.0 * kDay);    // long class
}

TEST(Dcm, NonFiniteLifetimesAreTreatedAsUnknown) {
  // A NaN (failed estimate) or ±inf ("immortal" marker) hint must land on the
  // conservative branch of every policy, never in the retention math.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  const RetentionPolicy dcm = MakeDcmPolicy(1.5, 60.0);
  for (double bad : {nan, inf, -inf, -1.0}) {
    EXPECT_DOUBLE_EQ(dcm(bad), 90.0) << bad;  // floor * margin, finite
    EXPECT_TRUE(std::isfinite(dcm(bad))) << bad;
  }

  const RetentionPolicy fixed = MakeFixedPolicy(kDay);
  for (double bad : {nan, inf, -inf}) {
    EXPECT_DOUBLE_EQ(fixed(bad), kDay) << bad;
  }

  const RetentionPolicy two = MakeTwoClassPolicy(kHour, 30.0 * kDay, 2.0 * kHour);
  for (double bad : {nan, inf, -inf}) {
    EXPECT_DOUBLE_EQ(two(bad), kHour) << bad;  // short (conservative) class
  }
}

TEST(Dcm, ZeroAndSubFloorLifetimesFloorNotVanish) {
  // Lifetime 0 ("unknown") and sub-floor hints must produce the same
  // scrubbable retention, not a zero or sub-scrub-period one.
  const RetentionPolicy dcm = MakeDcmPolicy(1.25, 120.0);
  EXPECT_DOUBLE_EQ(dcm(0.0), 150.0);
  EXPECT_DOUBLE_EQ(dcm(1e-9), 150.0);
  EXPECT_DOUBLE_EQ(dcm(119.999), 150.0);
  EXPECT_GT(dcm(120.001), 150.0);  // above the floor the hint takes over
}

TEST(Dcm, NegativeLifetimeNeverShortensTwoClassRetention) {
  // The negative branch must classify as short (conservative), not wrap into
  // the long class through an unsigned conversion or comparison quirk.
  const RetentionPolicy two = MakeTwoClassPolicy(10.0, 1000.0, 5.0);
  EXPECT_DOUBLE_EQ(two(-100.0), 10.0);
  EXPECT_DOUBLE_EQ(two(0.0), 10.0);
}

TEST(Dcm, DcmNeverUnderProvisionsVersusHint) {
  const RetentionPolicy policy = MakeDcmPolicy(1.25, 120.0);
  for (double lifetime : {0.1, 10.0, 300.0, kHour, kDay, 30.0 * kDay}) {
    EXPECT_GE(policy(lifetime), lifetime) << lifetime;
  }
}

}  // namespace
}  // namespace mrmcore
}  // namespace mrm
