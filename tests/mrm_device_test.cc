#include "src/mrm/mrm_device.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mrmcore {
namespace {

MrmDeviceConfig TinyMrm() {
  MrmDeviceConfig config;
  config.name = "tiny-mrm";
  config.technology = cell::Technology::kSttMram;
  config.channels = 2;
  config.zones = 8;
  config.zone_blocks = 16;
  config.block_bytes = 4096;
  config.channel_read_bw_bytes_per_s = 10e9;
  config.channel_write_bw_ref_bytes_per_s = 1e9;
  config.default_retention_s = kHour;
  return config;
}

class MrmDeviceTest : public ::testing::Test {
 protected:
  MrmDeviceTest() : simulator_(1e9), device_(&simulator_, TinyMrm()) {}
  sim::Simulator simulator_;
  MrmDevice device_;
};

TEST_F(MrmDeviceTest, ConfigDerivations) {
  const MrmDeviceConfig config = TinyMrm();
  EXPECT_EQ(config.zone_bytes(), 16u * 4096);
  EXPECT_EQ(config.capacity_bytes(), 8u * 16 * 4096);
  EXPECT_EQ(config.total_blocks(), 128u);
  EXPECT_DOUBLE_EQ(config.peak_read_bw_bytes_per_s(), 20e9);
}

TEST_F(MrmDeviceTest, ConfigValidation) {
  MrmDeviceConfig bad = TinyMrm();
  bad.channels = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = TinyMrm();
  bad.default_retention_s = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = TinyMrm();
  bad.channel_read_bw_bytes_per_s = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST_F(MrmDeviceTest, ZoneLifecycle) {
  EXPECT_EQ(device_.zone_info(0).state, ZoneState::kEmpty);
  ASSERT_TRUE(device_.OpenZone(0).ok());
  EXPECT_EQ(device_.zone_info(0).state, ZoneState::kOpen);
  EXPECT_FALSE(device_.OpenZone(0).ok());  // already open
  ASSERT_TRUE(device_.ResetZone(0).ok());
  EXPECT_EQ(device_.zone_info(0).state, ZoneState::kEmpty);
}

TEST_F(MrmDeviceTest, RetiredZoneRejectsOperations) {
  device_.RetireZone(1);
  EXPECT_FALSE(device_.OpenZone(1).ok());
  EXPECT_FALSE(device_.ResetZone(1).ok());
}

TEST_F(MrmDeviceTest, AppendRequiresOpenZone) {
  EXPECT_FALSE(device_.AppendBlock(0, kHour, nullptr).ok());
}

TEST_F(MrmDeviceTest, AppendAdvancesWritePointerAndSealsZone) {
  ASSERT_TRUE(device_.OpenZone(0).ok());
  for (std::uint32_t i = 0; i < 16; ++i) {
    auto block = device_.AppendBlock(0, kHour, nullptr);
    ASSERT_TRUE(block.ok()) << i;
    EXPECT_EQ(block.value(), i);
  }
  EXPECT_EQ(device_.zone_info(0).state, ZoneState::kFull);
  EXPECT_FALSE(device_.AppendBlock(0, kHour, nullptr).ok());
}

TEST_F(MrmDeviceTest, BlockMetaRecordsRetention) {
  ASSERT_TRUE(device_.OpenZone(0).ok());
  auto block = device_.AppendBlock(0, kDay, nullptr);
  ASSERT_TRUE(block.ok());
  const BlockMeta& meta = device_.block_meta(block.value());
  EXPECT_TRUE(meta.written);
  EXPECT_GE(meta.retention_s, kDay);
  EXPECT_EQ(meta.wear, 1u);
}

TEST_F(MrmDeviceTest, WriteCompletionFiresWithLatency) {
  ASSERT_TRUE(device_.OpenZone(0).ok());
  bool done = false;
  auto block = device_.AppendBlock(0, kHour, [&](BlockId) { done = true; });
  ASSERT_TRUE(block.ok());
  EXPECT_FALSE(done);
  simulator_.Run();
  EXPECT_TRUE(done);
  EXPECT_GT(simulator_.now(), 0u);
  EXPECT_TRUE(device_.Idle());
}

TEST_F(MrmDeviceTest, ReadBlockDeliversAliveData) {
  ASSERT_TRUE(device_.OpenZone(0).ok());
  auto block = device_.AppendBlock(0, kHour, nullptr);
  ASSERT_TRUE(block.ok());
  bool ok_flag = false;
  ASSERT_TRUE(device_.ReadBlock(block.value(), [&](bool ok) { ok_flag = ok; }).ok());
  simulator_.Run();
  EXPECT_TRUE(ok_flag);
  EXPECT_EQ(device_.stats().blocks_read, 1u);
}

TEST_F(MrmDeviceTest, ReadUnwrittenBlockFails) {
  EXPECT_FALSE(device_.ReadBlock(5, nullptr).ok());
  EXPECT_FALSE(device_.ReadBlock(1 << 20, nullptr).ok());
}

TEST_F(MrmDeviceTest, ExpiredDataReadsAsLost) {
  ASSERT_TRUE(device_.OpenZone(0).ok());
  // Program with the minimum retention the technology supports.
  const double min_retention = device_.tradeoff().min_retention_s();
  auto block = device_.AppendBlock(0, min_retention, nullptr);
  ASSERT_TRUE(block.ok());
  const double programmed = device_.block_meta(block.value()).retention_s;
  // Advance simulated time past the programmed retention.
  simulator_.ScheduleAt(simulator_.SecondsToTicks(programmed * 2.0), [] {});
  simulator_.Run();
  EXPECT_FALSE(device_.BlockAlive(block.value()));
  bool ok_flag = true;
  ASSERT_TRUE(device_.ReadBlock(block.value(), [&](bool ok) { ok_flag = ok; }).ok());
  simulator_.Run();
  EXPECT_FALSE(ok_flag);
  EXPECT_EQ(device_.stats().expired_reads, 1u);
}

TEST_F(MrmDeviceTest, BlockAgeTracksTime) {
  ASSERT_TRUE(device_.OpenZone(0).ok());
  auto block = device_.AppendBlock(0, kHour, nullptr);
  ASSERT_TRUE(block.ok());
  simulator_.ScheduleAt(simulator_.SecondsToTicks(100.0), [] {});
  simulator_.Run();
  EXPECT_NEAR(device_.BlockAge(block.value()), 100.0, 1.0);
}

TEST_F(MrmDeviceTest, ReadBlocksAggregatesOkCount) {
  ASSERT_TRUE(device_.OpenZone(0).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(device_.AppendBlock(0, kHour, nullptr).ok());
  }
  std::uint32_t ok_count = 0;
  ASSERT_TRUE(device_.ReadBlocks(0, 4, [&](std::uint32_t n) { ok_count = n; }).ok());
  simulator_.Run();
  EXPECT_EQ(ok_count, 4u);
}

TEST_F(MrmDeviceTest, ReadBlocksRejectsUnwrittenRange) {
  ASSERT_TRUE(device_.OpenZone(0).ok());
  ASSERT_TRUE(device_.AppendBlock(0, kHour, nullptr).ok());
  EXPECT_FALSE(device_.ReadBlocks(0, 4, nullptr).ok());  // 3 unwritten
  EXPECT_FALSE(device_.ReadBlocks(0, 0, nullptr).ok());  // empty
}

TEST_F(MrmDeviceTest, ResetZoneClearsBlocks) {
  ASSERT_TRUE(device_.OpenZone(0).ok());
  auto block = device_.AppendBlock(0, kHour, nullptr);
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(device_.ResetZone(0).ok());
  EXPECT_FALSE(device_.block_meta(block.value()).written);
  // Wear survives the reset.
  EXPECT_EQ(device_.block_meta(block.value()).wear, 1u);
  EXPECT_EQ(device_.zone_info(0).wear_cycles, 1u);
}

TEST_F(MrmDeviceTest, EnduranceGateFailsWornBlocks) {
  // Craft a trade-off with tiny endurance via PCM params.
  cell::PcmParams params;
  params.endurance_ref = 3.0;
  params.endurance_cap = 3.0;
  params.endurance_retention_exponent = 0.0;
  sim::Simulator simulator(1e9);
  MrmDeviceConfig config = TinyMrm();
  config.technology = cell::Technology::kPcm;
  MrmDevice device(&simulator, config, cell::MakePcmTradeoff(params));
  // Write the same zone repeatedly: wear accumulates per block.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(device.OpenZone(0).ok());
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(device.AppendBlock(0, kHour, nullptr).ok())
          << "round " << round << " block " << i;
    }
    ASSERT_TRUE(device.ResetZone(0).ok());
  }
  ASSERT_TRUE(device.OpenZone(0).ok());
  EXPECT_FALSE(device.AppendBlock(0, kHour, nullptr).ok());
  EXPECT_GT(device.stats().endurance_failures, 0u);
}

TEST_F(MrmDeviceTest, ShorterRetentionWritesFaster) {
  // DCM's performance angle: relaxed-retention writes finish sooner.
  auto run_write = [&](double retention) {
    sim::Simulator simulator(1e9);
    MrmDevice device(&simulator, TinyMrm());
    EXPECT_TRUE(device.OpenZone(0).ok());
    EXPECT_TRUE(device.AppendBlock(0, retention, nullptr).ok());
    simulator.Run();
    return simulator.now_seconds();
  };
  const double fast = run_write(60.0);
  const double slow = run_write(10.0 * 365 * 86400.0);
  EXPECT_LT(fast, slow);
}

TEST_F(MrmDeviceTest, ShorterRetentionUsesLessWriteEnergy) {
  sim::Simulator sa(1e9);
  MrmDevice a(&sa, TinyMrm());
  ASSERT_TRUE(a.OpenZone(0).ok());
  ASSERT_TRUE(a.AppendBlock(0, 60.0, nullptr).ok());

  sim::Simulator sb(1e9);
  MrmDevice b(&sb, TinyMrm());
  ASSERT_TRUE(b.OpenZone(0).ok());
  ASSERT_TRUE(b.AppendBlock(0, 10.0 * 365 * 86400.0, nullptr).ok());

  EXPECT_LT(a.stats().write_energy_pj, b.stats().write_energy_pj);
}

TEST_F(MrmDeviceTest, ChannelsServeBlocksInParallel) {
  // Two blocks on different channels finish in about the service time of
  // one; two on the same channel serialize.
  ASSERT_TRUE(device_.OpenZone(0).ok());
  ASSERT_TRUE(device_.AppendBlock(0, kHour, nullptr).ok());  // block 0 -> ch 0
  ASSERT_TRUE(device_.AppendBlock(0, kHour, nullptr).ok());  // block 1 -> ch 1
  simulator_.Run();
  const double parallel_time = simulator_.now_seconds();

  sim::Simulator simulator2(1e9);
  MrmDevice device2(&simulator2, TinyMrm());
  ASSERT_TRUE(device2.OpenZone(0).ok());
  ASSERT_TRUE(device2.AppendBlock(0, kHour, nullptr).ok());  // ch 0
  ASSERT_TRUE(device2.AppendBlock(0, kHour, nullptr).ok());  // ch 1
  ASSERT_TRUE(device2.AppendBlock(0, kHour, nullptr).ok());  // ch 0 again
  simulator2.Run();
  const double serialized_time = simulator2.now_seconds();
  EXPECT_GT(serialized_time, parallel_time * 1.5);
}

TEST_F(MrmDeviceTest, EnergyLedgerIncludesBackground) {
  simulator_.ScheduleAt(simulator_.SecondsToTicks(1.0), [] {});
  simulator_.Run();
  EXPECT_GT(device_.TotalEnergyPj(), 0.0);
}

TEST_F(MrmDeviceTest, ReadPriorityPreemptsQueuedWrites) {
  // Pile writes onto channel 0, then issue a read to the same channel: with
  // read priority the read overtakes every queued (not in-service) write.
  auto run = [&](bool read_priority) {
    sim::Simulator simulator(1e9);
    MrmDeviceConfig config = TinyMrm();
    config.channels = 1;  // everything contends on one channel
    config.read_priority = read_priority;
    MrmDevice device(&simulator, config);
    EXPECT_TRUE(device.OpenZone(0).ok());
    // Seed one readable block, then queue slow writes behind it.
    auto first = device.AppendBlock(0, kHour, nullptr);
    EXPECT_TRUE(first.ok());
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(device.AppendBlock(0, kHour, nullptr).ok());
    }
    double read_done_s = -1.0;
    EXPECT_TRUE(device
                    .ReadBlock(first.value(),
                               [&](bool) { read_done_s = simulator.now_seconds(); })
                    .ok());
    simulator.Run();
    EXPECT_GE(read_done_s, 0.0);
    return read_done_s;
  };
  const double with_priority = run(true);
  const double without_priority = run(false);
  EXPECT_LT(with_priority, without_priority * 0.5);
}

TEST_F(MrmDeviceTest, ReadPreemptionsCounted) {
  sim::Simulator simulator(1e9);
  MrmDeviceConfig config = TinyMrm();
  config.channels = 1;
  MrmDevice device(&simulator, config);
  ASSERT_TRUE(device.OpenZone(0).ok());
  auto first = device.AppendBlock(0, kHour, nullptr);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(device.AppendBlock(0, kHour, nullptr).ok());
  }
  ASSERT_TRUE(device.ReadBlock(first.value(), nullptr).ok());
  simulator.Run();
  EXPECT_GE(device.stats().read_preemptions, 1u);
}

TEST_F(MrmDeviceTest, FifoModeServesInOrder) {
  // Without read priority the read waits behind all queued writes; write
  // and read completion order must match issue order on one channel.
  sim::Simulator simulator(1e9);
  MrmDeviceConfig config = TinyMrm();
  config.channels = 1;
  config.read_priority = false;
  MrmDevice device(&simulator, config);
  ASSERT_TRUE(device.OpenZone(0).ok());
  std::vector<int> order;
  auto first = device.AppendBlock(0, kHour, [&](BlockId) { order.push_back(0); });
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(device.AppendBlock(0, kHour, [&](BlockId) { order.push_back(1); }).ok());
  ASSERT_TRUE(
      device.ReadBlock(first.value(), [&](bool) { order.push_back(2); }).ok());
  ASSERT_TRUE(device.AppendBlock(0, kHour, [&](BlockId) { order.push_back(3); }).ok());
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace mrmcore
}  // namespace mrm
