// Parameter-grid property tests for the ECC design machinery: across a grid
// of (codeword size, RBER, UBER target) the designed code must meet its
// target, be minimal, and behave monotonically.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "src/common/rng.h"
#include "src/mrm/ecc.h"

namespace mrm {
namespace mrmcore {
namespace {

using GridParam = std::tuple<std::uint64_t /*payload bytes*/, double /*rber*/,
                             double /*target uber*/>;

class EccGridTest : public ::testing::TestWithParam<GridParam> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, EccGridTest,
    ::testing::Combine(::testing::Values(512ull, 4096ull, 65536ull),
                       ::testing::Values(1e-6, 1e-4, 1e-3),
                       ::testing::Values(1e-12, 1e-15, 1e-18)),
    [](const auto& param_info) {
      return "b" + std::to_string(std::get<0>(param_info.param)) + "_r" +
             std::to_string(static_cast<int>(-std::log10(std::get<1>(param_info.param)))) + "_u" +
             std::to_string(static_cast<int>(-std::log10(std::get<2>(param_info.param))));
    });

TEST_P(EccGridTest, DesignMeetsTarget) {
  const auto [bytes, rber, uber] = GetParam();
  const std::uint64_t bits = bytes * 8;
  const double target_failure = uber * static_cast<double>(bits);
  const EccScheme scheme = DesignEcc(bits, rber, target_failure);
  EXPECT_LE(scheme.codeword_failure_prob, target_failure);
  EXPECT_LE(UberOf(scheme, rber), uber * 1.0000001);
}

TEST_P(EccGridTest, DesignIsMinimal) {
  const auto [bytes, rber, uber] = GetParam();
  const std::uint64_t bits = bytes * 8;
  const double target_failure = uber * static_cast<double>(bits);
  const EccScheme scheme = DesignEcc(bits, rber, target_failure);
  if (scheme.t > 0) {
    EXPECT_GT(BinomialTail(bits, scheme.t - 1, rber), target_failure)
        << "t could have been smaller";
  }
}

TEST_P(EccGridTest, ParityConsistentWithT) {
  const auto [bytes, rber, uber] = GetParam();
  const std::uint64_t bits = bytes * 8;
  const EccScheme scheme = DesignEcc(bits, rber, uber * static_cast<double>(bits));
  EXPECT_EQ(scheme.parity_bits, BchParityBits(bits, scheme.t));
  EXPECT_NEAR(scheme.overhead,
              static_cast<double>(scheme.parity_bits) / static_cast<double>(bits), 1e-12);
}

TEST_P(EccGridTest, OverheadBoundedForRealisticPoints) {
  const auto [bytes, rber, uber] = GetParam();
  const std::uint64_t bits = bytes * 8;
  const EccScheme scheme = DesignEcc(bits, rber, uber * static_cast<double>(bits));
  // Even the worst grid point (tiny codeword, RBER 1e-3, UBER 1e-18) must
  // stay under 100% parity; large codewords far under.
  EXPECT_LT(scheme.overhead, 1.0);
  if (bytes >= 4096 && rber <= 1e-4) {
    EXPECT_LT(scheme.overhead, 0.05);
  }
}

TEST(EccRandomized, TailMatchesMonteCarloEstimate) {
  // Cross-validate BinomialTail against simulation for a small case where
  // Monte Carlo converges quickly.
  const std::uint64_t n = 2000;
  const double p = 0.005;  // mean = 10
  const std::uint64_t t = 15;
  const double analytic = BinomialTail(n, t, p);

  Rng rng(4242);
  constexpr int kTrials = 20000;
  int exceed = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    // Sample Binomial(n, p) via Poisson approximation-free direct count of a
    // binomial using per-bit Bernoulli in chunks (fast enough at this size).
    std::uint64_t errors = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      errors += rng.NextBool(p) ? 1 : 0;
    }
    if (errors > t) {
      ++exceed;
    }
  }
  const double empirical = static_cast<double>(exceed) / kTrials;
  // Analytic ~5%; allow generous Monte Carlo noise.
  EXPECT_NEAR(empirical, analytic, 5.0 * std::sqrt(analytic / kTrials) + 0.005);
}

TEST(EccRandomized, MaxSafeAgeMonotoneInTargetUber) {
  auto tradeoff = cell::MakeSttMramTradeoff();
  const EccScheme scheme = DesignEcc(8ull * 64 * 1024, 1e-4, 1e-11);
  double previous = 0.0;
  for (double target : {1e-18, 1e-15, 1e-12, 1e-9}) {
    const double age = MaxSafeAge(*tradeoff, 86400.0, scheme, target);
    EXPECT_GE(age, previous) << target;
    previous = age;
  }
}

}  // namespace
}  // namespace mrmcore
}  // namespace mrm
