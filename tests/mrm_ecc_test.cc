#include "src/mrm/ecc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/units.h"

namespace mrm {
namespace mrmcore {
namespace {

TEST(BinomialTail, EdgeCases) {
  EXPECT_EQ(BinomialTail(100, 5, 0.0), 0.0);
  EXPECT_EQ(BinomialTail(100, 5, 1.0), 1.0);
  EXPECT_EQ(BinomialTail(100, 100, 0.5), 0.0);  // cannot exceed n
}

TEST(BinomialTail, MatchesExactSmallCase) {
  // X ~ Bin(4, 0.5): P[X > 2] = P(3) + P(4) = 4/16 + 1/16 = 0.3125.
  EXPECT_NEAR(BinomialTail(4, 2, 0.5), 0.3125, 1e-12);
}

TEST(BinomialTail, MatchesComplementSmallCase) {
  // X ~ Bin(10, 0.1): P[X > 0] = 1 - 0.9^10.
  EXPECT_NEAR(BinomialTail(10, 0, 0.1), 1.0 - std::pow(0.9, 10), 1e-12);
}

TEST(BinomialTail, MonotoneDecreasingInT) {
  double previous = 1.0;
  for (std::uint64_t t = 0; t < 50; t += 5) {
    const double tail = BinomialTail(1000, t, 0.01);
    EXPECT_LE(tail, previous + 1e-15);
    previous = tail;
  }
}

TEST(BinomialTail, MonotoneIncreasingInP) {
  double previous = 0.0;
  for (double p = 1e-6; p < 0.1; p *= 10.0) {
    const double tail = BinomialTail(10000, 10, p);
    EXPECT_GE(tail, previous);
    previous = tail;
  }
}

TEST(BinomialTail, FarBelowMeanIsOne) {
  EXPECT_DOUBLE_EQ(BinomialTail(1000000, 10, 0.01), 1.0);  // mean = 10000
}

TEST(BinomialTail, LargeNStable) {
  // mean = 100; the tail past 200 is tiny but must not be NaN/negative.
  const double tail = BinomialTail(1000000, 200, 1e-4);
  EXPECT_GE(tail, 0.0);
  EXPECT_LT(tail, 1e-15);
  EXPECT_FALSE(std::isnan(tail));
}

TEST(BchParityBits, ZeroForZeroT) { EXPECT_EQ(BchParityBits(4096, 0), 0u); }

TEST(BchParityBits, GrowsLinearlyInT) {
  const std::uint64_t one = BchParityBits(1 << 15, 1);
  const std::uint64_t ten = BchParityBits(1 << 15, 10);
  EXPECT_NEAR(static_cast<double>(ten), 10.0 * static_cast<double>(one), 2.0 * one);
}

TEST(BchParityBits, FieldSizeMatchesPayload) {
  // For a ~2^13-bit payload, m = 14 once parity is included.
  EXPECT_EQ(BchParityBits(8192, 1), 14u);
}

TEST(DesignEcc, MeetsTarget) {
  const EccScheme scheme = DesignEcc(/*payload_bits=*/8 * 4096, /*rber=*/1e-4,
                                     /*target_failure=*/1e-12);
  EXPECT_LE(scheme.codeword_failure_prob, 1e-12);
  EXPECT_GT(scheme.t, 0u);
  // Sanity: one fewer correctable bit would miss the target.
  EXPECT_GT(BinomialTail(scheme.payload_bits, scheme.t - 1, 1e-4), 1e-12);
}

TEST(DesignEcc, ZeroRberNeedsNoCorrection) {
  const EccScheme scheme = DesignEcc(4096, 0.0, 1e-15);
  EXPECT_EQ(scheme.t, 0u);
  EXPECT_EQ(scheme.parity_bits, 0u);
  EXPECT_EQ(scheme.overhead, 0.0);
}

TEST(DesignEcc, OverheadShrinksWithBlockSize) {
  // The Dolinar-Divsalar/E8 effect: same RBER and reliability target, bigger
  // codewords need proportionally less parity.
  const double rber = 1e-4;
  double previous_overhead = 1.0;
  for (std::uint64_t payload_bytes : {512ull, 4096ull, 32768ull, 262144ull}) {
    const std::uint64_t bits = payload_bytes * 8;
    const EccScheme scheme = DesignEcc(bits, rber, 1e-15 * static_cast<double>(bits));
    EXPECT_LT(scheme.overhead, previous_overhead)
        << "payload " << payload_bytes;
    previous_overhead = scheme.overhead;
  }
}

TEST(DesignEcc, StrongerTargetCostsMore) {
  const EccScheme loose = DesignEcc(32768, 1e-4, 1e-6);
  const EccScheme tight = DesignEcc(32768, 1e-4, 1e-15);
  EXPECT_GT(tight.t, loose.t);
  EXPECT_GT(tight.overhead, loose.overhead);
}

TEST(UberOf, NormalizesPerBit) {
  const EccScheme scheme = DesignEcc(8192, 1e-4, 1e-9);
  const double uber = UberOf(scheme, 1e-4);
  EXPECT_NEAR(uber, scheme.codeword_failure_prob / 8192.0, 1e-20);
}

TEST(MaxSafeAge, WithinRetentionWindow) {
  auto tradeoff = cell::MakeSttMramTradeoff();
  const double retention = kDay;
  const EccScheme scheme = DesignEcc(8ull * 64 * 1024, 1e-4, 1e-11);
  const double safe_age = MaxSafeAge(*tradeoff, retention, scheme, 1e-15);
  EXPECT_GT(safe_age, 0.0);
  // Strong ECC can stretch usable age a little past the programmed
  // retention (RBER at retention is 1e-4, below the code's limit), but it
  // must stay the same order of magnitude.
  EXPECT_LT(safe_age, 2.0 * retention);
}

TEST(MaxSafeAge, StrongerCodeExtendsSafeAge) {
  auto tradeoff = cell::MakeSttMramTradeoff();
  const double retention = kDay;
  const EccScheme weak = DesignEcc(8ull * 64 * 1024, 1e-4, 1e-6);
  const EccScheme strong = DesignEcc(8ull * 64 * 1024, 1e-4, 1e-14);
  const double weak_age = MaxSafeAge(*tradeoff, retention, weak, 1e-15);
  const double strong_age = MaxSafeAge(*tradeoff, retention, strong, 1e-15);
  EXPECT_GT(strong_age, weak_age);
}

TEST(MaxSafeAge, ImpossibleTargetIsZero) {
  auto tradeoff = cell::MakeSttMramTradeoff();
  EccScheme none;
  none.payload_bits = 8ull * 64 * 1024;
  none.t = 0;  // no correction at all
  const double safe_age = MaxSafeAge(*tradeoff, kDay, none, 1e-30);
  EXPECT_LT(safe_age, 1e-3);  // effectively unusable
}

TEST(MaxSafeAge, LongerRetentionLongerSafeAge) {
  auto tradeoff = cell::MakeSttMramTradeoff();
  const EccScheme scheme = DesignEcc(8ull * 64 * 1024, 1e-4, 1e-11);
  const double short_age = MaxSafeAge(*tradeoff, kHour, scheme, 1e-15);
  const double long_age = MaxSafeAge(*tradeoff, kDay, scheme, 1e-15);
  EXPECT_GT(long_age, short_age);
}

}  // namespace
}  // namespace mrmcore
}  // namespace mrm
