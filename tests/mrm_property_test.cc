// Property and failure-injection tests for the MRM device + control plane:
// random interleavings of append/read/free/advance must preserve the
// control plane's bookkeeping invariants, and endurance exhaustion must
// degrade gracefully (errors, never crashes or silent corruption).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/mrm/control_plane.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mrmcore {
namespace {

MrmDeviceConfig SmallDevice() {
  MrmDeviceConfig config;
  config.technology = cell::Technology::kSttMram;
  config.channels = 4;
  config.zones = 24;
  config.zone_blocks = 16;
  config.block_bytes = 4096;
  config.channel_read_bw_bytes_per_s = 10e9;
  config.channel_write_bw_ref_bytes_per_s = 10e9;
  return config;
}

class MrmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MrmPropertyTest, ::testing::Values(1, 17, 1234, 777777),
                         [](const auto& param_info) {
                           return "seed_" + std::to_string(param_info.param);
                         });

TEST_P(MrmPropertyTest, RandomLifecyclePreservesInvariants) {
  sim::Simulator simulator(1e9);
  MrmDevice device(&simulator, SmallDevice());
  ControlPlaneOptions options;
  options.scrub_period_s = 20.0;
  ControlPlane plane(&simulator, &device, options);

  Rng rng(GetParam());
  std::map<LogicalId, double> live;  // id -> expiry
  std::uint64_t drops = 0;
  plane.SetLossHandler([&](LogicalId id) {
    ++drops;
    live.erase(id);
  });

  double now = 0.0;
  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.NextBounded(4));
    switch (op) {
      case 0: {  // append with a random lifetime
        const double lifetime = 30.0 + rng.NextDouble() * 600.0;
        auto id = plane.Append(lifetime);
        if (id.ok()) {
          live[id.value()] = now + lifetime;
        }
        break;
      }
      case 1: {  // free a random live block
        if (!live.empty()) {
          auto it = live.begin();
          std::advance(it, static_cast<long>(rng.NextBounded(live.size())));
          plane.Free(it->first);
          live.erase(it);
        }
        break;
      }
      case 2: {  // read a random live block; must not error
        if (!live.empty()) {
          auto it = live.begin();
          std::advance(it, static_cast<long>(rng.NextBounded(live.size())));
          EXPECT_TRUE(plane.Read(it->first, nullptr).ok());
        }
        break;
      }
      case 3: {  // advance time
        now += rng.NextDouble() * 15.0;
        simulator.RunUntil(simulator.SecondsToTicks(now));
        break;
      }
    }
    // Invariant: the control plane's live count matches our ground truth.
    ASSERT_EQ(plane.live_blocks(), live.size()) << "step " << step;
    // Invariant: every block we believe is live is Alive().
    for (const auto& [id, expiry] : live) {
      ASSERT_TRUE(plane.Alive(id));
    }
  }
  // Drain: everything not freed should still be tracked or legitimately
  // dropped (expired); reads of tracked blocks keep succeeding.
  for (const auto& [id, expiry] : live) {
    EXPECT_TRUE(plane.Read(id, nullptr).ok());
  }
  simulator.RunUntil(simulator.SecondsToTicks(now + 1.0));
}

TEST_P(MrmPropertyTest, ZoneAccountingNeverLeaks) {
  sim::Simulator simulator(1e9);
  MrmDevice device(&simulator, SmallDevice());
  ControlPlaneOptions options;
  options.scrub_period_s = 30.0;
  ControlPlane plane(&simulator, &device, options);

  Rng rng(GetParam() * 31);
  std::vector<LogicalId> ids;
  // Fill-and-free cycles; afterwards all zones must be reusable.
  const MrmDeviceConfig config = SmallDevice();
  const std::uint64_t capacity = static_cast<std::uint64_t>(config.zones) * config.zone_blocks;
  for (int round = 0; round < 4; ++round) {
    // Fill ~60% of capacity.
    for (std::uint64_t i = 0; i < capacity * 6 / 10; ++i) {
      auto id = plane.Append(kDay);
      ASSERT_TRUE(id.ok()) << "round " << round << " i " << i;
      ids.push_back(id.value());
    }
    // Free in random order.
    while (!ids.empty()) {
      const std::size_t pick = static_cast<std::size_t>(rng.NextBounded(ids.size()));
      plane.Free(ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  EXPECT_EQ(plane.live_blocks(), 0u);
  EXPECT_GT(plane.stats().zones_reclaimed, 0u);
  // The device must still accept a full 60% fill (no zones leaked).
  for (std::uint64_t i = 0; i < capacity * 6 / 10; ++i) {
    ASSERT_TRUE(plane.Append(kDay).ok()) << i;
  }
}

TEST(MrmFailureInjection, EnduranceExhaustionDegradesGracefully) {
  // A PCM device with absurdly low endurance: appends eventually fail with
  // clean errors; the control plane reports drops instead of crashing.
  cell::PcmParams params;
  params.endurance_ref = 5.0;
  params.endurance_cap = 5.0;
  params.endurance_retention_exponent = 0.0;
  sim::Simulator simulator(1e9);
  MrmDeviceConfig config = SmallDevice();
  config.technology = cell::Technology::kPcm;
  MrmDevice device(&simulator, config, cell::MakePcmTradeoff(params));
  ControlPlaneOptions options;
  options.scrub_period_s = 30.0;
  ControlPlane plane(&simulator, &device, options);

  int successes = 0;
  int failures = 0;
  std::vector<LogicalId> ids;
  // Churn far past the device's total endurance.
  const std::uint64_t budget = static_cast<std::uint64_t>(
      SmallDevice().zones * SmallDevice().zone_blocks * 5 * 2);
  for (std::uint64_t i = 0; i < budget; ++i) {
    auto id = plane.Append(kDay);
    if (id.ok()) {
      ++successes;
      ids.push_back(id.value());
      if (ids.size() > 64) {
        plane.Free(ids.front());
        ids.erase(ids.begin());
      }
    } else {
      ++failures;
    }
  }
  EXPECT_GT(successes, 0);
  EXPECT_GT(failures, 0);  // the wall was hit
  EXPECT_GT(device.stats().endurance_failures, 0u);
  // Blocks written before exhaustion are still readable.
  for (LogicalId id : ids) {
    EXPECT_TRUE(plane.Read(id, nullptr).ok());
  }
}

TEST(MrmFailureInjection, ScrubSurvivesZonePressure) {
  // Nearly-full device + aggressive scrubbing: rewrites may fail for lack
  // of zones; the plane must degrade to drops, never corrupt its maps.
  sim::Simulator simulator(1e9);
  MrmDeviceConfig config = SmallDevice();
  config.zones = 6;
  MrmDevice device(&simulator, config);
  ControlPlaneOptions options;
  options.scrub_period_s = 5.0;
  // Weak code -> short safe age -> constant scrubbing.
  options.ecc.payload_bits = 8ull * 4096;
  options.ecc.t = 1;
  options.target_uber = 1e-18;
  ControlPlane plane(&simulator, &device, options);

  int lost = 0;
  plane.SetLossHandler([&](LogicalId) { ++lost; });
  std::vector<LogicalId> ids;
  const std::uint64_t capacity = static_cast<std::uint64_t>(config.zones) * config.zone_blocks;
  for (std::uint64_t i = 0; i < capacity - config.zone_blocks; ++i) {
    auto id = plane.Append(kDay);
    if (id.ok()) {
      ids.push_back(id.value());
    }
  }
  simulator.RunUntil(simulator.SecondsToTicks(120.0));
  // Bookkeeping still consistent: live + dropped == appended originally.
  EXPECT_EQ(plane.live_blocks() + static_cast<std::uint64_t>(lost), ids.size());
}

}  // namespace
}  // namespace mrmcore
}  // namespace mrm
