// RAS recovery path under deterministic fault injection (DESIGN.md §10):
// ECC decode outcomes, bounded read-retry, emergency scrub vs
// drop-and-recompute, zone failure/retirement, and the legacy failure
// counters (expired reads, endurance, read preemption).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/cell/tradeoff.h"
#include "src/common/units.h"
#include "src/fault/fault_config.h"
#include "src/fault/fault_injector.h"
#include "src/mrm/control_plane.h"
#include "src/mrm/mrm_device.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mrmcore {
namespace {

MrmDeviceConfig RasMrm(std::uint32_t ecc_t = 16) {
  MrmDeviceConfig config;
  config.name = "ras-mrm";
  config.technology = cell::Technology::kSttMram;
  config.channels = 2;
  config.zones = 8;
  config.zone_blocks = 16;
  config.block_bytes = 4096;
  config.channel_read_bw_bytes_per_s = 10e9;
  config.channel_write_bw_ref_bytes_per_s = 10e9;
  config.default_retention_s = kHour;
  config.ecc_t = ecc_t;
  return config;
}

fault::FaultConfig Faults(double transient_rber) {
  fault::FaultConfig config;
  config.seed = 1234;
  config.transient_rber = transient_rber;
  config.silent_fraction = 0.0;  // deterministic detected-uncorrectable
  return config;
}

// A rig owning one independent simulated device + control plane + injector.
struct Rig {
  Rig(const MrmDeviceConfig& config, const fault::FaultConfig& faults,
      ControlPlaneOptions options = {})
      : simulator(1e9),
        device(&simulator, config),
        plane(&simulator, &device, std::move(options)),
        injector(faults) {
    plane.SetFaultInjector(&injector);
  }

  void AdvanceTo(double seconds) { simulator.RunUntil(simulator.SecondsToTicks(seconds)); }

  sim::Simulator simulator;
  MrmDevice device;
  ControlPlane plane;
  fault::FaultInjector injector;
};

TEST(MrmRasTest, FaultRateZeroReproducesLegacyRunExactly) {
  // The acceptance bar: an attached all-zero-rate injector must not perturb
  // a single statistic or event relative to the fault-free simulator.
  struct Summary {
    std::uint64_t events, blocks_written, blocks_read, decoded, appends, reclaimed;
    double write_energy;
  };
  auto run = [](bool attach_injector) -> Summary {
    sim::Simulator simulator(1e9);
    MrmDevice device(&simulator, RasMrm());
    ControlPlane plane(&simulator, &device, {});
    fault::FaultInjector injector((fault::FaultConfig()));
    if (attach_injector) {
      plane.SetFaultInjector(&injector);
    }
    std::vector<LogicalId> ids;
    int reads_ok = 0;
    for (int i = 0; i < 20; ++i) {
      auto id = plane.Append(120.0);
      EXPECT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    for (const LogicalId id : ids) {
      EXPECT_TRUE(plane.Read(id, [&reads_ok](bool ok) { reads_ok += ok ? 1 : 0; }).ok());
    }
    simulator.RunUntil(simulator.SecondsToTicks(1.0));
    for (int i = 0; i < 10; ++i) {
      plane.Free(ids[i]);
    }
    simulator.RunUntil(simulator.SecondsToTicks(65.0));  // one scrub pass
    EXPECT_EQ(reads_ok, 20);
    return Summary{simulator.events_executed(),        device.stats().blocks_written,
                   device.stats().blocks_read,         device.stats().decoded_reads,
                   plane.stats().appends,              plane.stats().zones_reclaimed,
                   device.stats().write_energy_pj};
  };

  const auto legacy = run(false);
  const auto faulted = run(true);
  EXPECT_EQ(legacy.events, faulted.events);
  EXPECT_EQ(legacy.blocks_written, faulted.blocks_written);
  EXPECT_EQ(legacy.blocks_read, faulted.blocks_read);
  EXPECT_EQ(legacy.appends, faulted.appends);
  EXPECT_EQ(legacy.reclaimed, faulted.reclaimed);
  EXPECT_DOUBLE_EQ(legacy.write_energy, faulted.write_energy);
  // And the decode path never ran in either: no enabled injector.
  EXPECT_EQ(legacy.decoded, 0u);
  EXPECT_EQ(faulted.decoded, 0u);
}

TEST(MrmRasTest, CorrectedReadsDeliverDataAndCountInStats) {
  // Weak raw errors, strong code: every read sees raw bit errors (p_any ~ 1)
  // but the code corrects them all (p_uncorrectable ~ 0).
  Rig rig(RasMrm(/*ecc_t=*/512), Faults(1e-4));
  auto id = rig.plane.Append(120.0);
  ASSERT_TRUE(id.ok());
  bool ok_flag = false;
  ASSERT_TRUE(rig.plane.Read(id.value(), [&](bool ok) { ok_flag = ok; }).ok());
  rig.AdvanceTo(1.0);
  EXPECT_TRUE(ok_flag);
  EXPECT_EQ(rig.device.stats().decoded_reads, 1u);
  EXPECT_EQ(rig.device.stats().corrected_reads, 1u);
  EXPECT_EQ(rig.device.stats().uncorrectable_reads, 0u);
  EXPECT_EQ(rig.plane.stats().read_retries, 0u);
}

TEST(MrmRasTest, UncorrectableReadRecoversThroughEmergencyScrub) {
  // Saturated RBER against a weak code: every attempt decodes uncorrectable,
  // retries exhaust, and the emergency scrub re-programs from the logical
  // copy — the read still succeeds, the RAS ledger records the rescue.
  Rig rig(RasMrm(/*ecc_t=*/4), Faults(0.5));
  auto id = rig.plane.Append(600.0);
  ASSERT_TRUE(id.ok());
  bool ok_flag = false;
  ASSERT_TRUE(rig.plane.Read(id.value(), [&](bool ok) { ok_flag = ok; }).ok());
  rig.AdvanceTo(1.0);
  EXPECT_TRUE(ok_flag);
  EXPECT_TRUE(rig.plane.Alive(id.value()));
  EXPECT_EQ(rig.plane.stats().read_retries, 3u);  // default max_read_retries
  EXPECT_EQ(rig.plane.stats().retry_successes, 0u);
  EXPECT_EQ(rig.plane.stats().emergency_scrubs, 1u);
  EXPECT_EQ(rig.plane.stats().uncorrectable_drops, 0u);
  EXPECT_EQ(rig.device.stats().uncorrectable_reads, 4u);  // 1 + 3 retries
  // Four UEs landed in the first zone: the default threshold retires it.
  EXPECT_EQ(rig.plane.stats().zones_retired, 1u);
  EXPECT_EQ(rig.device.zone_info(0).state, ZoneState::kRetired);
  EXPECT_LT(rig.plane.UsableCapacityFraction(), 1.0);
  // Every injected fault got a terminal disposition.
  EXPECT_EQ(rig.injector.stats().injected_total(), rig.injector.stats().resolutions);
}

TEST(MrmRasTest, RetryRescuesTransientUpsets) {
  // Intermediate RBER against a matched code: roughly half the attempts
  // decode uncorrectable, so bounded retries rescue most reads.
  Rig rig(RasMrm(/*ecc_t=*/32), Faults(1e-3));
  std::vector<LogicalId> ids;
  for (int i = 0; i < 12; ++i) {
    auto id = rig.plane.Append(600.0);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  int completed = 0;
  int ok_count = 0;
  for (const LogicalId id : ids) {
    ASSERT_TRUE(rig.plane
                    .Read(id,
                          [&](bool ok) {
                            ++completed;
                            ok_count += ok ? 1 : 0;
                          })
                    .ok());
  }
  rig.AdvanceTo(1.0);
  EXPECT_EQ(completed, 12);
  EXPECT_EQ(ok_count, 12);  // retries or emergency scrubs rescue every read
  EXPECT_GE(rig.plane.stats().read_retries, 1u);
  EXPECT_GE(rig.plane.stats().retry_successes, 1u);
  EXPECT_EQ(rig.injector.stats().injected_total(), rig.injector.stats().resolutions);
}

TEST(MrmRasTest, DropAndRecomputeSurfacesLossToOwner) {
  ControlPlaneOptions options;
  options.emergency_scrub = false;  // §4: drop, owner recomputes
  Rig rig(RasMrm(/*ecc_t=*/4), Faults(0.5), options);
  std::vector<LogicalId> lost;
  rig.plane.SetLossHandler([&lost](LogicalId id) { lost.push_back(id); });
  auto id = rig.plane.Append(600.0);
  ASSERT_TRUE(id.ok());
  bool ok_flag = true;
  ASSERT_TRUE(rig.plane.Read(id.value(), [&](bool ok) { ok_flag = ok; }).ok());
  rig.AdvanceTo(1.0);
  EXPECT_FALSE(ok_flag);
  EXPECT_FALSE(rig.plane.Alive(id.value()));
  EXPECT_EQ(rig.plane.stats().uncorrectable_drops, 1u);
  EXPECT_EQ(rig.plane.stats().emergency_scrubs, 0u);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], id.value());
  EXPECT_EQ(rig.injector.stats().injected_total(), rig.injector.stats().resolutions);
}

TEST(MrmRasTest, ZoneFailureRetiresZonesAndDegradesCapacity) {
  fault::FaultConfig faults;
  faults.seed = 7;
  faults.zone_failure_prob = 1.0;  // every append kills its zone
  Rig rig(RasMrm(), faults);
  const auto id = rig.plane.Append(600.0);
  EXPECT_FALSE(id.ok());  // both reallocation attempts hit failing zones
  EXPECT_EQ(rig.plane.stats().zones_retired, 2u);
  EXPECT_EQ(rig.device.stats().zone_failures, 2u);
  EXPECT_EQ(rig.device.zone_info(0).state, ZoneState::kRetired);
  EXPECT_DOUBLE_EQ(rig.plane.UsableCapacityFraction(), 0.75);  // 6 of 8 left
  EXPECT_EQ(rig.injector.stats().injected_total(), rig.injector.stats().resolutions);
}

TEST(MrmRasTest, StuckSlotsBurnAndAppendsMoveOn) {
  fault::FaultConfig faults;
  faults.seed = 7;
  faults.stuck_block_prob = 1.0;
  faults.stuck_wear_fraction = 0.0;  // wear gate open from the first cycle
  sim::Simulator simulator(1e9);
  MrmDevice device(&simulator, RasMrm());
  fault::FaultInjector injector(faults);
  device.SetFaultInjector(&injector);

  ASSERT_TRUE(device.OpenZone(0).ok());
  const auto first = device.AppendBlock(0, kHour, nullptr);
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(device.zone_info(0).write_pointer, 1u);  // slot consumed by the burn
  EXPECT_TRUE(device.block_meta(0).stuck);
  EXPECT_FALSE(device.block_meta(0).written);
  EXPECT_EQ(device.stats().stuck_blocks, 1u);
  // The next append targets the next slot — and burns it too at prob 1.
  EXPECT_FALSE(device.AppendBlock(0, kHour, nullptr).ok());
  EXPECT_EQ(device.stats().stuck_blocks, 2u);
  EXPECT_EQ(injector.stats().injected_total(), injector.stats().resolutions);
}

TEST(MrmRasTest, ExpiredReadFailsAndCountsExpiredReads) {
  sim::Simulator simulator(1e9);
  MrmDevice device(&simulator, RasMrm());
  ASSERT_TRUE(device.OpenZone(0).ok());
  const auto block = device.AppendBlock(0, /*retention_s=*/10.0, nullptr);
  ASSERT_TRUE(block.ok());
  // The tradeoff may clamp the requested retention up to its own floor: age
  // the block past whatever was actually programmed.
  const double programmed_s = device.block_meta(block.value()).retention_s;
  simulator.ScheduleAt(simulator.SecondsToTicks(2.0 * programmed_s + 1.0), [] {});
  simulator.Run();
  bool ok_flag = true;
  ASSERT_TRUE(device.ReadBlock(block.value(), [&](bool ok) { ok_flag = ok; }).ok());
  simulator.Run();
  EXPECT_FALSE(ok_flag);
  EXPECT_EQ(device.stats().expired_reads, 1u);
}

// A trade-off model with a tiny fixed endurance, to exhaust it in a test.
class TinyEnduranceTradeoff : public cell::RetentionTradeoff {
 public:
  cell::Technology technology() const override { return cell::Technology::kSttMram; }
  std::string name() const override { return "tiny-endurance"; }
  double min_retention_s() const override { return 1e-6; }
  double max_retention_s() const override { return 1e9; }
  cell::OperatingPoint AtRetention(double retention_s) const override {
    cell::OperatingPoint point;
    point.retention_s = std::clamp(retention_s, min_retention_s(), max_retention_s());
    point.write_latency_ns = 10.0;
    point.write_energy_pj_per_bit = 1.0;
    point.read_latency_ns = 5.0;
    point.read_energy_pj_per_bit = 0.5;
    point.endurance_cycles = 2.0;
    return point;
  }
};

TEST(MrmRasTest, EnduranceExhaustionCountsFailures) {
  MrmDeviceConfig config = RasMrm();
  config.zones = 2;
  config.zone_blocks = 1;
  sim::Simulator simulator(1e9);
  MrmDevice device(&simulator, config, std::make_unique<TinyEnduranceTradeoff>());
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_TRUE(device.OpenZone(0).ok());
    ASSERT_TRUE(device.AppendBlock(0, kHour, nullptr).ok()) << "cycle " << cycle;
    ASSERT_TRUE(device.ResetZone(0).ok());
  }
  ASSERT_TRUE(device.OpenZone(0).ok());
  const auto worn_out = device.AppendBlock(0, kHour, nullptr);
  EXPECT_FALSE(worn_out.ok());
  EXPECT_EQ(device.stats().endurance_failures, 1u);
}

TEST(MrmRasTest, ReadsPreemptQueuedWrites) {
  MrmDeviceConfig config = RasMrm();
  config.channels = 1;  // serialize everything onto one channel queue
  sim::Simulator simulator(1e9);
  MrmDevice device(&simulator, config);
  ASSERT_TRUE(device.OpenZone(0).ok());
  const auto first = device.AppendBlock(0, kHour, nullptr);   // in service
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(device.AppendBlock(0, kHour, nullptr).ok());    // queued write
  bool ok_flag = false;
  ASSERT_TRUE(device.ReadBlock(first.value(), [&](bool ok) { ok_flag = ok; }).ok());
  simulator.Run();
  EXPECT_TRUE(ok_flag);
  EXPECT_EQ(device.stats().read_preemptions, 1u);
}

TEST(MrmRasTest, FaultedRunsAreDeterministic) {
  // The same (seed, config, workload) triple must reproduce every statistic.
  auto run = [] {
    Rig rig(RasMrm(/*ecc_t=*/32), Faults(1e-3));
    std::vector<LogicalId> ids;
    for (int i = 0; i < 16; ++i) {
      auto id = rig.plane.Append(600.0);
      if (id.ok()) {
        ids.push_back(id.value());
      }
    }
    int ok_count = 0;
    for (const LogicalId id : ids) {
      (void)rig.plane.Read(id, [&ok_count](bool ok) { ok_count += ok ? 1 : 0; });
    }
    rig.AdvanceTo(1.0);
    struct Summary {
      std::uint64_t events, retries, successes, scrubs, drops, ue;
      int ok_count;
    };
    return Summary{rig.simulator.events_executed(),
                   rig.plane.stats().read_retries,
                   rig.plane.stats().retry_successes,
                   rig.plane.stats().emergency_scrubs,
                   rig.plane.stats().uncorrectable_drops,
                   rig.device.stats().uncorrectable_reads,
                   ok_count};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.scrubs, b.scrubs);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.ue, b.ue);
  EXPECT_EQ(a.ok_count, b.ok_count);
}

}  // namespace
}  // namespace mrmcore
}  // namespace mrm
