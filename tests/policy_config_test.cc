// Scenario-key plumbing tests: policy.* keys → MemoryPolicy, presets, and
// strict parse errors naming the offending key.

#include "src/policy/policy_config.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/config.h"
#include "src/common/units.h"

namespace mrm {
namespace policy {
namespace {

// The defaults a driver would seed: scenario placement/tiering already parsed.
MemoryPolicy SeedDefaults() {
  MemoryPolicy defaults;
  defaults.placement.weights_tier = 1;
  defaults.placement.kv_hot_tier = 0;
  defaults.placement.kv_cold_tier = 1;
  defaults.placement.kv_hot_fraction = 0.15;
  defaults.placement.activations_tier = 0;
  defaults.tiering.scrub_tier = 1;
  return defaults;
}

TEST(PolicyConfig, HasPolicyKeysDetectsThePrefix) {
  Config config;
  EXPECT_FALSE(HasPolicyKeys(config));
  config.Set("tiers", "hbm,mrm");
  EXPECT_FALSE(HasPolicyKeys(config));
  config.Set("policy.kv.margin", "1.5");
  EXPECT_TRUE(HasPolicyKeys(config));
}

TEST(PolicyConfig, EmptyConfigKeepsSeededDefaults) {
  const auto built = BuildMemoryPolicy(Config{}, SeedDefaults());
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value(), SeedDefaults());
}

TEST(PolicyConfig, PresetsResolveAndKeepSeededPlacement) {
  for (const char* name : {"dcm", "scm-10y", "two-class"}) {
    const auto preset = PolicyPresetByName(name, SeedDefaults());
    ASSERT_TRUE(preset.ok()) << name;
    EXPECT_EQ(preset.value().placement.weights_tier, 1) << name;
    EXPECT_TRUE(preset.value().Validate(2).ok()) << name;
  }
  // The SCM-era baseline: every stream fixed, worst-case ECC.
  const auto scm = PolicyPresetByName("scm-10y", SeedDefaults());
  ASSERT_TRUE(scm.ok());
  EXPECT_EQ(scm.value().kv.kind, RetentionClassKind::kFixed);
  ASSERT_EQ(scm.value().ecc_bands.size(), 1u);
  EXPECT_EQ(scm.value().ecc_bands[0].t, 64u);

  const auto unknown = PolicyPresetByName("bogus", SeedDefaults());
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().message().find("policy.preset"), std::string::npos);
}

TEST(PolicyConfig, PerStreamClassKeysOverrideThePreset) {
  Config config;
  config.Set("policy.preset", "dcm");
  config.Set("policy.kv.class", "two-class");
  config.Set("policy.kv.short_retention", "30m");
  config.Set("policy.kv.long_retention", "90d");
  config.Set("policy.kv.short_threshold", "1h");
  config.Set("policy.weights.class", "fixed");
  config.Set("policy.weights.retention", "180d");

  const auto built = BuildMemoryPolicy(config, SeedDefaults());
  ASSERT_TRUE(built.ok()) << built.error().message();
  const MemoryPolicy& p = built.value();
  EXPECT_EQ(p.kv.kind, RetentionClassKind::kTwoClass);
  EXPECT_DOUBLE_EQ(p.kv.short_retention_s, 30.0 * 60.0);
  EXPECT_DOUBLE_EQ(p.kv.long_retention_s, 90.0 * kDay);
  EXPECT_DOUBLE_EQ(p.kv.short_threshold_s, kHour);
  EXPECT_EQ(p.weights.kind, RetentionClassKind::kFixed);
  EXPECT_DOUBLE_EQ(p.weights.fixed_retention_s, 180.0 * kDay);
  // Preset still visible where not overridden.
  EXPECT_EQ(p.activations.kind, RetentionClassKind::kDcm);
}

TEST(PolicyConfig, EccBandListParses) {
  Config config;
  config.Set("policy.ecc_bands", "0:16,1000000:40");
  const auto built = BuildMemoryPolicy(config, SeedDefaults());
  ASSERT_TRUE(built.ok()) << built.error().message();
  ASSERT_EQ(built.value().ecc_bands.size(), 2u);
  EXPECT_EQ(built.value().ecc_bands[0].min_wear_cycles, 0u);
  EXPECT_EQ(built.value().ecc_bands[0].t, 16u);
  EXPECT_EQ(built.value().ecc_bands[1].min_wear_cycles, 1000000u);
  EXPECT_EQ(built.value().ecc_bands[1].t, 40u);
}

TEST(PolicyConfig, MalformedKeysAreNamedErrors) {
  {
    Config config;
    config.Set("policy.kv.class", "sometimes");
    const auto built = BuildMemoryPolicy(config, SeedDefaults());
    ASSERT_FALSE(built.ok());
    EXPECT_NE(built.error().message().find("policy.kv.class"), std::string::npos)
        << built.error().message();
  }
  {
    Config config;
    config.Set("policy.ecc_bands", "0:16,banana");
    const auto built = BuildMemoryPolicy(config, SeedDefaults());
    ASSERT_FALSE(built.ok());
    EXPECT_NE(built.error().message().find("policy.ecc_bands"), std::string::npos)
        << built.error().message();
  }
  {
    Config config;
    config.Set("policy.ecc_bands", "0:nope");
    EXPECT_FALSE(BuildMemoryPolicy(config, SeedDefaults()).ok());
  }
}

TEST(PolicyConfig, ScrubAgeAndLifetimeKeysLand) {
  Config config;
  config.Set("policy.scrub.kv_age", "45m");
  config.Set("policy.scrub.weights_age", "6h");
  config.Set("policy.kv_lifetime", "20m");
  config.Set("policy.scrub_crossover", "2m");
  config.Set("policy.target_uber", "1e-14");
  const auto built = BuildMemoryPolicy(config, SeedDefaults());
  ASSERT_TRUE(built.ok()) << built.error().message();
  EXPECT_DOUBLE_EQ(built.value().tiering.kv_scrub_age_s, 45.0 * 60.0);
  EXPECT_DOUBLE_EQ(built.value().tiering.weights_scrub_age_s, 6.0 * kHour);
  EXPECT_DOUBLE_EQ(built.value().kv_lifetime_hint_s, 20.0 * 60.0);
  EXPECT_DOUBLE_EQ(built.value().scrub_crossover_s, 120.0);
  EXPECT_DOUBLE_EQ(built.value().target_uber, 1e-14);
}

}  // namespace
}  // namespace policy
}  // namespace mrm
