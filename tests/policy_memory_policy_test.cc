// MemoryPolicy aggregate tests (DESIGN.md §14): per-rule Validate rejections
// (every error names the policy.* rule it enforces), lifetime-dispatch of the
// compiled plane policy, ECC payload accounting, scrub-age derivation, and
// the snapshot contract (fingerprint gates, codec round-trip).

#include "src/policy/memory_policy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "src/cell/tradeoff.h"
#include "src/common/units.h"
#include "src/mrm/mrm_config.h"
#include "src/snapshot/codec.h"

namespace mrm {
namespace policy {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

mrmcore::MrmDeviceConfig TestDevice() {
  mrmcore::MrmDeviceConfig config;
  config.technology = cell::Technology::kSttMram;
  config.ecc_codeword_bits = 4096;
  config.ecc_t = 16;
  return config;
}

// A policy with every field off its default, for round-trip/fingerprint
// sensitivity tests.
MemoryPolicy FancyPolicy() {
  MemoryPolicy p;
  p.kv.kind = RetentionClassKind::kDcm;
  p.kv.margin = 1.75;
  p.kv.floor_s = 90.0;
  p.weights.kind = RetentionClassKind::kFixed;
  p.weights.fixed_retention_s = 45.0 * kDay;
  p.activations.kind = RetentionClassKind::kTwoClass;
  p.activations.short_retention_s = 30.0;
  p.activations.long_retention_s = 900.0;
  p.activations.short_threshold_s = 60.0;
  p.activation_lifetime_cap_s = 2.0;
  p.weight_lifetime_floor_s = 3.0 * kDay;
  p.activation_lifetime_hint_s = 0.5;
  p.kv_lifetime_hint_s = 450.0;
  p.weight_lifetime_hint_s = 60.0 * kDay;
  p.ecc_bands = {{0, 16}, {1000000, 40}};
  p.target_uber = 1e-14;
  p.scrub_crossover_s = 30.0;
  p.placement.weights_tier = 1;
  p.placement.kv_hot_tier = 0;
  p.placement.kv_cold_tier = 1;
  p.placement.kv_hot_fraction = 0.25;
  p.placement.activations_tier = 0;
  p.tiering.scrub_tier = 1;
  p.tiering.kv_scrub_age_s = 1800.0;
  p.tiering.weights_scrub_age_s = 7200.0;
  return p;
}

// --- RetentionClass mapping --------------------------------------------------

TEST(RetentionClass, DcmMarginsOverFloor) {
  RetentionClass cls;
  cls.kind = RetentionClassKind::kDcm;
  cls.margin = 1.5;
  cls.floor_s = 100.0;
  EXPECT_DOUBLE_EQ(cls.RetentionFor(1000.0), 1500.0);
  EXPECT_DOUBLE_EQ(cls.RetentionFor(10.0), 150.0);  // floored
}

TEST(RetentionClass, FixedIgnoresLifetime) {
  RetentionClass cls;
  cls.kind = RetentionClassKind::kFixed;
  cls.fixed_retention_s = kDay;
  EXPECT_DOUBLE_EQ(cls.RetentionFor(1.0), kDay);
  EXPECT_DOUBLE_EQ(cls.RetentionFor(10.0 * kYear), kDay);
}

TEST(RetentionClass, TwoClassSplitsInclusive) {
  RetentionClass cls;
  cls.kind = RetentionClassKind::kTwoClass;
  cls.short_retention_s = kHour;
  cls.long_retention_s = 30.0 * kDay;
  cls.short_threshold_s = 2.0 * kHour;
  EXPECT_DOUBLE_EQ(cls.RetentionFor(60.0), kHour);
  EXPECT_DOUBLE_EQ(cls.RetentionFor(2.0 * kHour), kHour);
  EXPECT_DOUBLE_EQ(cls.RetentionFor(kDay), 30.0 * kDay);
}

TEST(RetentionClass, NonFiniteHintsLandOnConservativeBranch) {
  RetentionClass dcm;
  dcm.margin = 1.25;
  dcm.floor_s = 120.0;
  for (double bad : {kNan, kInf, -kInf, -5.0}) {
    EXPECT_DOUBLE_EQ(dcm.RetentionFor(bad), 150.0) << bad;
  }
  RetentionClass two;
  two.kind = RetentionClassKind::kTwoClass;
  two.short_retention_s = 10.0;
  two.long_retention_s = 100.0;
  two.short_threshold_s = 50.0;
  for (double bad : {kNan, kInf, -kInf}) {
    EXPECT_DOUBLE_EQ(two.RetentionFor(bad), 10.0) << bad;
  }
}

TEST(RetentionClass, KindNamesRoundTrip) {
  for (auto kind : {RetentionClassKind::kDcm, RetentionClassKind::kFixed,
                    RetentionClassKind::kTwoClass}) {
    const auto back = RetentionClassKindByName(RetentionClassKindName(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
  EXPECT_FALSE(RetentionClassKindByName("bogus").ok());
}

// --- Per-rule Validate rejections -------------------------------------------

// Each case mutates one rule and expects a diagnostic naming it.
void ExpectRejected(const MemoryPolicy& policy, const std::string& rule) {
  const Status status = policy.Validate(/*tier_count=*/2);
  ASSERT_FALSE(status.ok()) << "expected rejection naming '" << rule << "'";
  EXPECT_NE(status.message().find(rule), std::string::npos) << status.message();
}

TEST(MemoryPolicyValidate, DefaultsAreValid) {
  EXPECT_TRUE(MemoryPolicy{}.Validate(2).ok());
  EXPECT_TRUE(FancyPolicy().Validate(2).ok());
}

TEST(MemoryPolicyValidate, RejectsSubUnityMargin) {
  MemoryPolicy p;
  p.kv.margin = 0.9;
  ExpectRejected(p, "policy.kv.margin");
}

TEST(MemoryPolicyValidate, RejectsNonFiniteMargin) {
  MemoryPolicy p;
  p.weights.margin = kNan;
  ExpectRejected(p, "policy.weights.margin");
}

TEST(MemoryPolicyValidate, RejectsNegativeFloor) {
  MemoryPolicy p;
  p.activations.floor_s = -1.0;
  ExpectRejected(p, "policy.activations.floor");
}

TEST(MemoryPolicyValidate, RejectsNonPositiveFixedRetention) {
  MemoryPolicy p;
  p.kv.kind = RetentionClassKind::kFixed;
  p.kv.fixed_retention_s = 0.0;
  ExpectRejected(p, "policy.kv.retention");
}

TEST(MemoryPolicyValidate, RejectsInactiveFieldGarbageToo) {
  // kv is a DCM class, but its unused two-class fields still validate so a
  // scenario typo cannot hide in an inactive field.
  MemoryPolicy p;
  p.kv.short_retention_s = kInf;
  ExpectRejected(p, "policy.kv.short_retention");
}

TEST(MemoryPolicyValidate, RejectsShortAboveLongRetention) {
  MemoryPolicy p;
  p.kv.kind = RetentionClassKind::kTwoClass;
  p.kv.short_retention_s = kDay;
  p.kv.long_retention_s = kHour;
  ExpectRejected(p, "policy.kv.short_retention");
}

TEST(MemoryPolicyValidate, RejectsWeightFloorBelowActivationCap) {
  MemoryPolicy p;
  p.activation_lifetime_cap_s = 10.0;
  p.weight_lifetime_floor_s = 5.0;
  ExpectRejected(p, "policy.weight_floor");
}

TEST(MemoryPolicyValidate, RejectsActivationHintAboveCap) {
  MemoryPolicy p;
  p.activation_lifetime_hint_s = p.activation_lifetime_cap_s;
  ExpectRejected(p, "policy.activation_lifetime");
}

TEST(MemoryPolicyValidate, RejectsKvHintOutsideItsBand) {
  MemoryPolicy p;
  p.kv_lifetime_hint_s = p.weight_lifetime_floor_s;  // would classify as weights
  ExpectRejected(p, "policy.kv_lifetime");
}

TEST(MemoryPolicyValidate, RejectsWeightHintBelowFloor) {
  MemoryPolicy p;
  p.weight_lifetime_hint_s = p.weight_lifetime_floor_s / 2.0;
  ExpectRejected(p, "policy.weight_lifetime");
}

TEST(MemoryPolicyValidate, RejectsZeroStrengthBand) {
  MemoryPolicy p;
  p.ecc_bands = {{0, 0}};
  ExpectRejected(p, "policy.ecc_bands");
}

TEST(MemoryPolicyValidate, RejectsBandsNotStartingAtWearZero) {
  MemoryPolicy p;
  p.ecc_bands = {{100, 16}};
  ExpectRejected(p, "policy.ecc_bands");
}

TEST(MemoryPolicyValidate, RejectsNonAscendingBands) {
  MemoryPolicy p;
  p.ecc_bands = {{0, 16}, {1000, 24}, {1000, 40}};
  ExpectRejected(p, "policy.ecc_bands");
}

TEST(MemoryPolicyValidate, RejectsTargetUberOutOfRange) {
  MemoryPolicy p;
  p.target_uber = 0.0;
  ExpectRejected(p, "policy.target_uber");
  p.target_uber = 1.5;
  ExpectRejected(p, "policy.target_uber");
}

TEST(MemoryPolicyValidate, RejectsNegativeScrubCrossover) {
  MemoryPolicy p;
  p.scrub_crossover_s = -1.0;
  ExpectRejected(p, "policy.scrub_crossover");
}

TEST(MemoryPolicyValidate, RejectsPlacementOutsideTierCount) {
  MemoryPolicy p = FancyPolicy();
  p.placement.activations_tier = 2;  // tier_count is 2 → max index 1
  EXPECT_FALSE(p.Validate(2).ok());
  EXPECT_TRUE(p.Validate(3).ok());
}

TEST(MemoryPolicyValidate, RejectsTieringInconsistentWithPlacement) {
  MemoryPolicy p = FancyPolicy();
  p.tiering.weights_scrub_age_s = 100.0;
  p.placement.weights_tier = 0;  // weights no longer on the scrub tier
  const Status status = p.Validate(2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("weights_scrub_age_s"), std::string::npos)
      << status.message();
}

// --- Lifetime dispatch -------------------------------------------------------

TEST(MemoryPolicy, CompiledPlanePolicyDispatchesOnLifetime) {
  // Give each stream a distinguishable fixed retention so the dispatch is
  // observable through the compiled callback.
  MemoryPolicy p;
  p.activations.kind = RetentionClassKind::kFixed;
  p.activations.fixed_retention_s = 100.0;
  p.kv.kind = RetentionClassKind::kFixed;
  p.kv.fixed_retention_s = 200.0;
  p.weights.kind = RetentionClassKind::kFixed;
  p.weights.fixed_retention_s = 300.0;
  ASSERT_TRUE(p.Validate(2).ok());

  const mrmcore::RetentionPolicy compiled = p.CompilePlanePolicy();
  EXPECT_DOUBLE_EQ(compiled(0.1), 100.0);   // below activation cap
  EXPECT_DOUBLE_EQ(compiled(600.0), 200.0); // between cap and weight floor
  EXPECT_DOUBLE_EQ(compiled(30.0 * kDay), 300.0);  // at/above weight floor
  // Exact boundaries: cap belongs to KV, floor to weights.
  EXPECT_DOUBLE_EQ(compiled(p.activation_lifetime_cap_s), 200.0);
  EXPECT_DOUBLE_EQ(compiled(p.weight_lifetime_floor_s), 300.0);
  // A poisoned hint is "unknown" → conservative activation branch.
  EXPECT_DOUBLE_EQ(compiled(kNan), 100.0);
}

// --- ECC payload accounting --------------------------------------------------

TEST(MemoryPolicy, UsablePayloadFractionTracksBandStrength) {
  const mrmcore::MrmDeviceConfig device = TestDevice();
  MemoryPolicy p;
  EXPECT_DOUBLE_EQ(p.UsablePayloadFraction(device), 1.0);  // no bands declared

  double prev = 1.0;
  for (std::uint32_t t : {16u, 24u, 40u, 64u}) {
    p.ecc_bands = {{0, t}};
    const double frac = p.UsablePayloadFraction(device);
    EXPECT_GT(frac, 0.0) << t;
    EXPECT_LT(frac, prev) << t;  // stronger code → less payload
    prev = frac;
  }
}

TEST(MemoryPolicy, DeriveScrubAgesScalesWithRetention) {
  auto tradeoff = cell::MakeTradeoffFor(cell::Technology::kSttMram);
  ASSERT_TRUE(tradeoff.ok());
  MemoryPolicy p = FancyPolicy();
  p.ecc_bands = {{0, 40}};

  const auto derived = p.DeriveScrubAges(TestDevice(), *tradeoff.value());
  ASSERT_TRUE(derived.ok()) << derived.error().message();
  EXPECT_GT(derived.value().kv_scrub_age_s, 0.0);
  // Weights sit on the scrub tier in FancyPolicy, so their age derives too —
  // far longer than KV's because weights are programmed for longer retention
  // (more write margin → lower RBER at equal age → later scrub deadline).
  EXPECT_GT(derived.value().weights_scrub_age_s, 0.0);
  EXPECT_GT(derived.value().weights_scrub_age_s, derived.value().kv_scrub_age_s);

  // Off the scrub tier, weights derive no scrub age.
  MemoryPolicy off = p;
  off.placement.weights_tier = 0;
  off.tiering.weights_scrub_age_s = 0.0;
  const auto derived_off = off.DeriveScrubAges(TestDevice(), *tradeoff.value());
  ASSERT_TRUE(derived_off.ok()) << derived_off.error().message();
  EXPECT_DOUBLE_EQ(derived_off.value().weights_scrub_age_s, 0.0);
}

// --- Snapshot contract -------------------------------------------------------

TEST(MemoryPolicy, SaveRestoreRoundTripsEveryField) {
  const MemoryPolicy original = FancyPolicy();
  snapshot::Encoder enc;
  original.SaveState(&enc);
  const std::vector<std::uint8_t> bytes = enc.TakeBytes();

  MemoryPolicy restored;
  snapshot::Decoder dec(bytes.data(), bytes.size());
  ASSERT_TRUE(restored.RestoreState(&dec));
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_EQ(original, restored);
  EXPECT_EQ(original.FingerprintDigest(), restored.FingerprintDigest());
}

TEST(MemoryPolicy, RestoreRejectsTruncatedBytes) {
  snapshot::Encoder enc;
  FancyPolicy().SaveState(&enc);
  std::vector<std::uint8_t> bytes = enc.TakeBytes();
  bytes.resize(bytes.size() / 2);
  MemoryPolicy restored;
  snapshot::Decoder dec(bytes.data(), bytes.size());
  EXPECT_FALSE(restored.RestoreState(&dec));
}

TEST(MemoryPolicy, FingerprintSeesEveryPolicyParameter) {
  const MemoryPolicy base = FancyPolicy();
  const std::uint64_t digest = base.FingerprintDigest();

  MemoryPolicy m = base;
  m.kv.margin = 2.0;
  EXPECT_NE(m.FingerprintDigest(), digest);

  m = base;
  m.ecc_bands[1].t = 64;
  EXPECT_NE(m.FingerprintDigest(), digest);

  m = base;
  m.scrub_crossover_s += 1.0;
  EXPECT_NE(m.FingerprintDigest(), digest);

  m = base;
  m.placement.kv_hot_fraction = 0.5;
  EXPECT_NE(m.FingerprintDigest(), digest);

  m = base;
  m.tiering.kv_scrub_age_s += 1.0;
  EXPECT_NE(m.FingerprintDigest(), digest);

  m = base;
  m.weight_lifetime_hint_s += kDay;
  EXPECT_NE(m.FingerprintDigest(), digest);
}

}  // namespace
}  // namespace policy
}  // namespace mrm
