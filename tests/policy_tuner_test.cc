// Two-fidelity tuner tests: grid shape, frontier/winner selection against the
// static SCM baseline, analytic↔sim agreement inside the documented bound,
// and bit-identical reports across runs and sim-thread counts.

#include "src/policy/tuner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mrm {
namespace policy {
namespace {

// A cheap tune: the default grid but a short serving run and one promoted
// candidate besides the baseline.
TunerOptions CheapOptions(int sim_threads = 1) {
  TunerOptions options = TunerOptions::Defaults();
  options.requests = 2;
  options.output_tokens = 8;
  options.max_validate = 1;
  options.sim_threads = sim_threads;
  return options;
}

void ExpectReportsEqual(const TuneReport& a, const TuneReport& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  EXPECT_EQ(a.winner_index, b.winner_index);
  EXPECT_EQ(a.baseline_index, b.baseline_index);
  EXPECT_EQ(a.j_per_token_delta_frac, b.j_per_token_delta_frac);
  EXPECT_EQ(a.max_agreement_error, b.max_agreement_error);
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    const CandidateOutcome& ca = a.candidates[i];
    const CandidateOutcome& cb = b.candidates[i];
    EXPECT_EQ(ca.name, cb.name) << i;
    EXPECT_EQ(ca.analytic_j_per_token, cb.analytic_j_per_token) << ca.name;
    EXPECT_EQ(ca.analytic_decode_step_s, cb.analytic_decode_step_s) << ca.name;
    EXPECT_EQ(ca.sim_decode_step_s, cb.sim_decode_step_s) << ca.name;
    EXPECT_EQ(ca.sim_j_per_token, cb.sim_j_per_token) << ca.name;
    EXPECT_EQ(ca.faults_injected, cb.faults_injected) << ca.name;
    EXPECT_EQ(ca.on_frontier, cb.on_frontier) << ca.name;
    EXPECT_EQ(ca.validated, cb.validated) << ca.name;
  }
}

TEST(PolicyTuner, DefaultGridHasOneBaselineAndValidates) {
  const auto grid = DefaultPolicyGrid();
  ASSERT_GT(grid.size(), 3u);
  int baselines = 0;
  for (const PolicyCandidate& candidate : grid) {
    baselines += candidate.baseline ? 1 : 0;
    EXPECT_TRUE(candidate.policy.Validate(2).ok()) << candidate.name;
  }
  EXPECT_EQ(baselines, 1);
}

TEST(PolicyTuner, TunedDcmDominatesStaticScmBaseline) {
  const TuneReport report = RunTune(CheapOptions());
  ASSERT_GE(report.baseline_index, 0);
  ASSERT_GE(report.winner_index, 0);
  const CandidateOutcome& baseline = *report.baseline();
  const CandidateOutcome& winner = *report.winner();
  EXPECT_TRUE(baseline.baseline);
  EXPECT_FALSE(winner.baseline);
  EXPECT_TRUE(winner.validated);
  // The paper's claim, quantified: managing retention strictly beats 10-year
  // SCM provisioning on J/token at equal-or-better usable capacity.
  EXPECT_LT(winner.analytic_j_per_token, baseline.analytic_j_per_token);
  EXPECT_GE(winner.usable_capacity_fraction, baseline.usable_capacity_fraction);
  EXPECT_LT(report.j_per_token_delta_frac, 0.0);
  EXPECT_GE(report.capacity_delta_frac, 0.0);
}

TEST(PolicyTuner, ValidatedCandidatesAgreeWithinTheBound) {
  const TunerOptions options = CheapOptions();
  const TuneReport report = RunTune(options);
  int validated = 0;
  for (const CandidateOutcome& c : report.candidates) {
    if (!c.validated) {
      continue;
    }
    ++validated;
    EXPECT_TRUE(c.within_agreement)
        << c.name << " ratio " << c.agreement_ratio;
    EXPECT_LE(std::abs(c.agreement_ratio - 1.0), options.agreement_bound) << c.name;
    // Validation ran under the F2 fault rung, not a fault-free sandbox.
    EXPECT_GT(c.faults_injected, 0u) << c.name;
    EXPECT_GT(c.sim_events, 0u) << c.name;
  }
  EXPECT_EQ(validated, 2);  // baseline + max_validate
  EXPECT_LE(report.max_agreement_error, options.agreement_bound);
}

TEST(PolicyTuner, InfeasibleCandidatesAreReportedNotDropped) {
  std::vector<PolicyCandidate> grid = DefaultPolicyGrid();
  PolicyCandidate broken;
  broken.name = "broken_margin";
  broken.policy = grid.back().policy;
  broken.policy.kv.margin = 0.5;  // violates policy.kv.margin >= 1
  grid.push_back(broken);

  const TuneReport report = RunTune(CheapOptions(), grid);
  ASSERT_EQ(report.candidates.size(), grid.size());
  const CandidateOutcome& last = report.candidates.back();
  EXPECT_FALSE(last.feasible);
  EXPECT_NE(last.infeasible_why.find("policy.kv.margin"), std::string::npos)
      << last.infeasible_why;
  EXPECT_FALSE(last.on_frontier);
  EXPECT_FALSE(last.validated);
}

TEST(PolicyTuner, ReportIsBitIdenticalAcrossRunsAndThreads) {
  const TuneReport first = RunTune(CheapOptions(1));
  const TuneReport again = RunTune(CheapOptions(1));
  ExpectReportsEqual(first, again);
  const TuneReport threaded = RunTune(CheapOptions(4));
  ExpectReportsEqual(first, threaded);
}

}  // namespace
}  // namespace policy
}  // namespace mrm
