// Zero-allocation guarantee for the steady-state simulation path (built only
// with -DMRMSIM_ALLOC_TEST=ON).
//
// The event core and controller promise that once warmed up — event slab,
// bucket-chunk pool, pending pool, inflight slab and rung vectors all at
// their peak shapes — running requests through the system performs no heap
// allocation at all: wakes are retimed in place, callbacks fit the event
// queue's inline storage, and completions recycle pool slots. This test
// counts every operator new under a closed-loop workload's steady phase and
// requires exactly zero.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/mem/device_config.h"
#include "src/mem/memory_system.h"
#include "src/sim/simulator.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

}  // namespace

// Counting hooks. Replacing the global operators is the only way to observe
// every allocation, including ones hidden inside the standard library. GCC
// cannot see that these replacements pair new with malloc consistently and
// flags the free() calls below.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mrm {
namespace {

// Closed-loop driver kept behind a single global so the completion callback
// is a captureless lambda — it converts to a bare function pointer inside
// std::function, which never heap-allocates.
struct Driver {
  sim::Simulator* sim = nullptr;
  mem::MemorySystem* system = nullptr;
  std::uint64_t remaining_to_issue = 0;
  std::uint64_t remaining_to_complete = 0;
  std::uint64_t lines = 0;
  std::uint64_t line = 0;
  std::uint64_t lcg = 12345;

  std::uint64_t NextRand() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  }

  void IssueOne() {
    --remaining_to_issue;
    mem::Request request;
    request.kind = NextRand() % 100 < 60 ? mem::Request::Kind::kRead : mem::Request::Kind::kWrite;
    request.addr = (NextRand() % lines) * line;
    request.size = static_cast<std::uint32_t>(line);
    request.on_complete = [](const mem::Request&) {
      Driver* d = Instance();
      --d->remaining_to_complete;
      if (d->remaining_to_issue > 0) {
        d->IssueOne();
      }
    };
    system->Enqueue(std::move(request));
  }

  static Driver* Instance() {
    static Driver driver;
    return &driver;
  }
};

TEST(SteadyStateAllocation, ClosedLoopRunAllocatesNothing) {
  sim::Simulator sim;
  mem::MemorySystem system(&sim, mem::DDR5Config());

  Driver* driver = Driver::Instance();
  driver->sim = &sim;
  driver->system = &system;
  driver->lines = system.capacity_bytes() / system.config().access_bytes;
  driver->line = system.config().access_bytes;

  // Warmup: grows every pool/slab/rung to its peak shape for this workload.
  driver->remaining_to_issue = 40000;
  driver->remaining_to_complete = 40000;
  for (int i = 0; i < 48; ++i) {
    driver->IssueOne();
  }
  sim.Run();
  ASSERT_EQ(driver->remaining_to_complete, 0u);

  // Steady phase: identical workload, counted. Must be allocation-free.
  driver->remaining_to_issue = 40000;
  driver->remaining_to_complete = 40000;
  g_counting.store(true);
  g_alloc_count.store(0);
  for (int i = 0; i < 48; ++i) {
    driver->IssueOne();
  }
  sim.Run();
  g_counting.store(false);

  EXPECT_EQ(driver->remaining_to_complete, 0u);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "steady-state simulation path performed heap allocations";
}

}  // namespace
}  // namespace mrm
