#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace mrm {
namespace sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.NextTime(), kTickNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(30, [&] { order.push_back(3); });
  queue.Push(10, [&] { order.push_back(1); });
  queue.Push(20, [&] { order.push_back(2); });
  Tick when = 0;
  while (!queue.empty()) {
    queue.Pop(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(when, 30u);
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Push(5, [&order, i] { order.push_back(i); });
  }
  Tick when = 0;
  while (!queue.empty()) {
    queue.Pop(&when)();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeTracksHead) {
  EventQueue queue;
  queue.Push(50, [] {});
  EXPECT_EQ(queue.NextTime(), 50u);
  queue.Push(20, [] {});
  EXPECT_EQ(queue.NextTime(), 20u);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Push(10, [&] { fired = true; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.NextTime(), kTickNever);
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue queue;
  const EventId id = queue.Push(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.Cancel(12345));
}

TEST(EventQueue, CancelledHeadSkipped) {
  EventQueue queue;
  std::vector<int> order;
  const EventId first = queue.Push(1, [&] { order.push_back(1); });
  queue.Push(2, [&] { order.push_back(2); });
  queue.Cancel(first);
  EXPECT_EQ(queue.NextTime(), 2u);
  Tick when = 0;
  queue.Pop(&when)();
  EXPECT_EQ(when, 2u);
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue queue;
  const EventId a = queue.Push(1, [] {});
  queue.Push(2, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, ManyEventsStress) {
  EventQueue queue;
  std::uint64_t sum = 0;
  for (Tick t = 1000; t > 0; --t) {
    queue.Push(t, [&sum, t] { sum += t; });
  }
  Tick previous = 0;
  Tick when = 0;
  while (!queue.empty()) {
    queue.Pop(&when)();
    EXPECT_GE(when, previous);
    previous = when;
  }
  EXPECT_EQ(sum, 1000ull * 1001 / 2);
}

}  // namespace
}  // namespace sim
}  // namespace mrm
