#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace mrm {
namespace sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.NextTime(), kTickNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(30, [&] { order.push_back(3); });
  queue.Push(10, [&] { order.push_back(1); });
  queue.Push(20, [&] { order.push_back(2); });
  Tick when = 0;
  while (!queue.empty()) {
    queue.Pop(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(when, 30u);
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Push(5, [&order, i] { order.push_back(i); });
  }
  Tick when = 0;
  while (!queue.empty()) {
    queue.Pop(&when)();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeTracksHead) {
  EventQueue queue;
  queue.Push(50, [] {});
  EXPECT_EQ(queue.NextTime(), 50u);
  queue.Push(20, [] {});
  EXPECT_EQ(queue.NextTime(), 20u);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Push(10, [&] { fired = true; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.NextTime(), kTickNever);
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue queue;
  const EventId id = queue.Push(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.Cancel(12345));
}

TEST(EventQueue, CancelledHeadSkipped) {
  EventQueue queue;
  std::vector<int> order;
  const EventId first = queue.Push(1, [&] { order.push_back(1); });
  queue.Push(2, [&] { order.push_back(2); });
  queue.Cancel(first);
  EXPECT_EQ(queue.NextTime(), 2u);
  Tick when = 0;
  queue.Pop(&when)();
  EXPECT_EQ(when, 2u);
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue queue;
  const EventId a = queue.Push(1, [] {});
  queue.Push(2, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, CancelAfterExecutionFails) {
  EventQueue queue;
  const EventId id = queue.Push(5, [] {});
  Tick when = 0;
  queue.Pop(&when)();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueue, CancelOwnIdDuringExecutionFails) {
  EventQueue queue;
  EventId id = 0;
  bool cancelled = true;
  id = queue.Push(5, [&queue, &id, &cancelled] { cancelled = queue.Cancel(id); });
  ASSERT_EQ(queue.NextTime(), 5u);  // settles the front, as Simulator does
  queue.ExecuteTop();
  EXPECT_FALSE(cancelled);
}

TEST(EventQueue, RetimeMovesEvent) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Push(100, [&] { fired = true; });
  queue.Push(50, [] {});
  const EventId moved = queue.Retime(id, 10);
  ASSERT_NE(moved, kInvalidEventId);
  EXPECT_EQ(queue.NextTime(), 10u);
  // The old id died with the retime; the new one controls the event.
  EXPECT_FALSE(queue.Cancel(id));
  Tick when = 0;
  queue.Pop(&when)();
  EXPECT_TRUE(fired);
  EXPECT_EQ(when, 10u);
}

TEST(EventQueue, RetimeDeadEventReturnsInvalid) {
  EventQueue queue;
  const EventId id = queue.Push(5, [] {});
  Tick when = 0;
  queue.Pop(&when)();
  EXPECT_EQ(queue.Retime(id, 10), kInvalidEventId);
  EventId cancelled = queue.Push(5, [] {});
  queue.Cancel(cancelled);
  EXPECT_EQ(queue.Retime(cancelled, 10), kInvalidEventId);
}

TEST(EventQueue, RetimeTieBreaksAsFreshPush) {
  EventQueue queue;
  std::vector<int> order;
  const EventId a = queue.Push(5, [&] { order.push_back(1); });
  queue.Push(5, [&] { order.push_back(2); });
  // Retiming A to the same tick re-queues it behind B, exactly like the
  // cancel + re-push it replaces.
  ASSERT_NE(queue.Retime(a, 5), kInvalidEventId);
  Tick when = 0;
  while (!queue.empty()) {
    queue.Pop(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

// Regression: a drained over-threshold bucket respreads into a child rung.
// That child must cover the parent bucket's FULL span — not just the span of
// the drained entries — or later pushes into the uncovered remainder match
// the parent's membership test and vanish into the already-drained bucket.
TEST(EventQueue, RespreadCoversFullParentBucket) {
  EventQueue queue;
  const Tick base = Tick{1} << 20;
  std::size_t total = 0;
  // A tight cluster (well past the spread threshold) plus a far outlier, so
  // the first rung is wide and the whole cluster piles into one bucket.
  for (int i = 0; i < 96; ++i) {
    queue.Push(base + static_cast<Tick>(i % 48), [] {});
    ++total;
  }
  queue.Push(base + (Tick{1} << 16), [] {});
  ++total;
  // Draining triggers the respread of the cluster bucket.
  Tick when = 0;
  std::size_t popped = 0;
  for (int i = 0; i < 8; ++i) {
    queue.Pop(&when)();
    ++popped;
  }
  // New events inside the parent bucket's span but beyond the cluster's
  // maximum key: these were silently lost when the child rung only covered
  // [min, max] of the drained entries.
  for (int i = 0; i < 16; ++i) {
    queue.Push(base + 100 + static_cast<Tick>(i), [] {});
    ++total;
  }
  Tick previous = 0;
  while (!queue.empty()) {
    queue.Pop(&when)();
    ++popped;
    EXPECT_GE(when, previous);
    previous = when;
  }
  EXPECT_EQ(popped, total);
}

// Steady-state churn must reuse slots and chunks: the slab grows to the peak
// outstanding population and then stays put, no matter how many events flow
// through.
TEST(EventQueue, MillionEventChurnKeepsSlabBounded) {
  EventQueue queue;
  std::mt19937_64 rng(1);
  constexpr int kOutstanding = 256;
  constexpr std::uint64_t kTotal = 1'000'000;
  Tick now = 0;
  for (int i = 0; i < kOutstanding; ++i) {
    queue.Push(now + 1 + rng() % 1000, [] {});
  }
  Tick when = 0;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    queue.Pop(&when)();
    now = when;
    const EventId id = queue.Push(now + 1 + rng() % 1000, [] {});
    // Sprinkle cancels and retimes to churn the free lists too.
    if ((i & 7) == 0) {
      queue.Cancel(id);
      queue.Push(now + 1 + rng() % 1000, [] {});
    } else if ((i & 7) == 1) {
      queue.Retime(id, now + 1 + rng() % 100);
    }
  }
  EXPECT_EQ(queue.size(), kOutstanding);
  // Peak live population is kOutstanding + 1; allow generous slack for slab
  // chunk granularity but fail on unbounded growth.
  EXPECT_LE(queue.slab_capacity(), 1024u);
}

TEST(EventQueue, ManyEventsStress) {
  EventQueue queue;
  std::uint64_t sum = 0;
  for (Tick t = 1000; t > 0; --t) {
    queue.Push(t, [&sum, t] { sum += t; });
  }
  Tick previous = 0;
  Tick when = 0;
  while (!queue.empty()) {
    queue.Pop(&when)();
    EXPECT_GE(when, previous);
    previous = when;
  }
  EXPECT_EQ(sum, 1000ull * 1001 / 2);
}

}  // namespace
}  // namespace sim
}  // namespace mrm
