#include "src/sim/parallel_executor.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace mrm {
namespace sim {
namespace {

TEST(ParallelExecutor, RunsEveryTaskExactlyOnce) {
  ParallelExecutor executor(4);
  constexpr int kTasks = 97;
  std::vector<std::atomic<int>> hits(kTasks);
  executor.Run(kTasks, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ParallelExecutor, ReusableAcrossManyGenerations) {
  // The pool is reused epoch after epoch: no run may lose tasks to a worker
  // still finishing the previous generation.
  ParallelExecutor executor(4);
  std::atomic<std::uint64_t> sum{0};
  std::uint64_t expected = 0;
  for (int round = 0; round < 2000; ++round) {
    const int tasks = 1 + round % 23;
    executor.Run(tasks, [&](int i) { sum.fetch_add(static_cast<std::uint64_t>(i) + 1); });
    expected += static_cast<std::uint64_t>(tasks) * (tasks + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelExecutor, ZeroAndNegativeTaskCountsAreNoOps) {
  ParallelExecutor executor(2);
  int calls = 0;
  executor.Run(0, [&](int) { ++calls; });
  executor.Run(-5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelExecutor, SingleThreadRunsInline) {
  // threads <= 1 spawns no workers; tasks run on the calling thread.
  ParallelExecutor executor(1);
  EXPECT_EQ(executor.threads(), 1);
  std::vector<int> order;
  executor.Run(5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelExecutor, MoreThreadsThanTasks) {
  ParallelExecutor executor(8);
  EXPECT_EQ(executor.threads(), 8);
  std::vector<std::atomic<int>> hits(3);
  executor.Run(3, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST(ParallelExecutor, PlanRunsEveryTaskExactlyOnce) {
  // An uneven explicit plan (caller light, workers heavy, one participant
  // idle) must still run each task exactly once per dispatch.
  ParallelExecutor executor(4);
  constexpr int kTasks = 12;
  executor.SetPlan({11, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {0, 1, 9, 12});
  std::vector<std::atomic<int>> hits(kTasks);
  constexpr int kRounds = 300;
  for (int round = 0; round < kRounds; ++round) {
    executor.Run(kTasks, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), kRounds) << "task " << i;
  }
}

TEST(ParallelExecutor, PackedPlanRunsOnCallerOnly) {
  // A plan that assigns every task to participant 0 engages no worker: all
  // tasks execute on the calling thread, in plan order.
  ParallelExecutor executor(4);
  constexpr int kTasks = 16;
  std::vector<int> order(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  executor.SetPlan(order, {0, kTasks});
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> off_caller{0};
  std::vector<int> sequence;  // written by the caller only if the plan holds
  for (int round = 0; round < 200; ++round) {
    executor.Run(kTasks, [&](int i) {
      if (std::this_thread::get_id() != caller) {
        off_caller.fetch_add(1);
      } else {
        sequence.push_back(i);
      }
    });
  }
  EXPECT_EQ(off_caller.load(), 0);
  ASSERT_EQ(sequence.size(), static_cast<std::size_t>(200 * kTasks));
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(sequence[static_cast<std::size_t>(i)], i);
  }
}

TEST(ParallelExecutor, MismatchedPlanFallsBackToStriding) {
  ParallelExecutor executor(4);
  executor.SetPlan({0, 1, 2, 3, 4, 5}, {0, 3, 6});  // plan for 6 tasks
  std::vector<std::atomic<int>> hits(9);
  executor.Run(9, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ParallelExecutor, ClearPlanRestoresStriding) {
  ParallelExecutor executor(4);
  constexpr int kTasks = 8;
  std::vector<int> order(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  executor.SetPlan(order, {0, kTasks});
  executor.ClearPlan();
  std::vector<std::atomic<int>> hits(kTasks);
  executor.Run(kTasks, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ParallelExecutor, RunRoundsDrivesEveryRound) {
  ParallelExecutor executor(4);
  constexpr int kTasks = 16;
  std::vector<std::atomic<int>> hits(kTasks);
  int rounds = 0;
  executor.RunRounds(
      kTasks, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); },
      [&] { return ++rounds < 50; });
  EXPECT_EQ(rounds, 50);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 50) << "task " << i;
  }
}

TEST(ParallelExecutor, RoundsObserveBetweenWrites) {
  // The between() callback runs serially on the caller; its writes must be
  // visible to the next round's tasks on any worker (release on the round
  // counter, acquire in the worker's round spin).
  ParallelExecutor executor(4);
  constexpr int kTasks = 8;
  constexpr std::uint64_t kRounds = 400;
  std::uint64_t value = 1;  // plain: written only by between(), read by tasks
  std::vector<std::uint64_t> acc(kTasks, 0);  // acc[i] written only by task i
  std::uint64_t rounds = 0;
  std::uint64_t expected = 0;
  executor.RunRounds(
      kTasks, [&](int i) { acc[static_cast<std::size_t>(i)] += value; },
      [&] {
        expected += value;
        value += 1;
        return ++rounds < kRounds;
      });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(acc[static_cast<std::size_t>(i)], expected) << "task " << i;
  }
}

TEST(ParallelExecutor, RunRoundsWithPlanAndSerialPoolAgree) {
  const auto run = [](int threads, bool plan) {
    ParallelExecutor executor(threads);
    constexpr int kTasks = 6;
    if (plan && threads > 1) {
      executor.SetPlan({5, 4, 3, 2, 1, 0}, {0, 2, 6});
    }
    std::vector<std::uint64_t> cells(kTasks, 0);
    int rounds = 0;
    executor.RunRounds(
        kTasks,
        [&](int i) { cells[static_cast<std::size_t>(i)] += static_cast<std::uint64_t>(i) + 1; },
        [&] { return ++rounds < 25; });
    std::uint64_t sum = 0;
    for (const std::uint64_t c : cells) {
      sum += c;
    }
    return sum;
  };
  const std::uint64_t serial = run(1, false);
  EXPECT_EQ(run(4, false), serial);
  EXPECT_EQ(run(4, true), serial);
}

TEST(ParallelExecutor, RunRoundsZeroTasksStillRunsBetween) {
  ParallelExecutor executor(2);
  int rounds = 0;
  executor.RunRounds(0, [](int) { FAIL() << "no tasks to run"; }, [&] { return ++rounds < 5; });
  EXPECT_EQ(rounds, 5);
}

TEST(ParallelExecutor, SpinsPerYieldTunableAndClamped) {
  ParallelExecutor executor(2);
  executor.SetSpinsPerYield(7);
  EXPECT_EQ(executor.spins_per_yield(), 7);
  executor.SetSpinsPerYield(0);  // clamps to 1: a zero budget would never poll
  EXPECT_EQ(executor.spins_per_yield(), 1);
  std::vector<std::atomic<int>> hits(5);
  executor.Run(5, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST(ParallelExecutor, TasksObservePriorGenerationWrites) {
  // Run() is a full barrier: writes made by generation N's tasks must be
  // visible to generation N+1's tasks on any thread.
  ParallelExecutor executor(4);
  constexpr int kTasks = 16;
  std::vector<std::uint64_t> cells(kTasks, 0);  // plain, not atomic
  for (int round = 0; round < 500; ++round) {
    // Rotate task->cell so every cell is written by a different participant
    // each round — a missing barrier would lose increments or race.
    executor.Run(kTasks,
                 [&, round](int i) { cells[static_cast<std::size_t>((i + round) % kTasks)] += 1; });
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(cells[static_cast<std::size_t>(i)], 500u) << "task " << i;
  }
}

}  // namespace
}  // namespace sim
}  // namespace mrm
