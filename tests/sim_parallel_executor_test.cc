#include "src/sim/parallel_executor.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace mrm {
namespace sim {
namespace {

TEST(ParallelExecutor, RunsEveryTaskExactlyOnce) {
  ParallelExecutor executor(4);
  constexpr int kTasks = 97;
  std::vector<std::atomic<int>> hits(kTasks);
  executor.Run(kTasks, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ParallelExecutor, ReusableAcrossManyGenerations) {
  // The pool is reused epoch after epoch: no run may lose tasks to a worker
  // still finishing the previous generation.
  ParallelExecutor executor(4);
  std::atomic<std::uint64_t> sum{0};
  std::uint64_t expected = 0;
  for (int round = 0; round < 2000; ++round) {
    const int tasks = 1 + round % 23;
    executor.Run(tasks, [&](int i) { sum.fetch_add(static_cast<std::uint64_t>(i) + 1); });
    expected += static_cast<std::uint64_t>(tasks) * (tasks + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelExecutor, ZeroAndNegativeTaskCountsAreNoOps) {
  ParallelExecutor executor(2);
  int calls = 0;
  executor.Run(0, [&](int) { ++calls; });
  executor.Run(-5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelExecutor, SingleThreadRunsInline) {
  // threads <= 1 spawns no workers; tasks run on the calling thread.
  ParallelExecutor executor(1);
  EXPECT_EQ(executor.threads(), 1);
  std::vector<int> order;
  executor.Run(5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelExecutor, MoreThreadsThanTasks) {
  ParallelExecutor executor(8);
  EXPECT_EQ(executor.threads(), 8);
  std::vector<std::atomic<int>> hits(3);
  executor.Run(3, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST(ParallelExecutor, TasksObservePriorGenerationWrites) {
  // Run() is a full barrier: writes made by generation N's tasks must be
  // visible to generation N+1's tasks on any thread.
  ParallelExecutor executor(4);
  constexpr int kTasks = 16;
  std::vector<std::uint64_t> cells(kTasks, 0);  // plain, not atomic
  for (int round = 0; round < 500; ++round) {
    // Rotate task->cell so every cell is written by a different participant
    // each round — a missing barrier would lose increments or race.
    executor.Run(kTasks,
                 [&, round](int i) { cells[static_cast<std::size_t>((i + round) % kTasks)] += 1; });
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(cells[static_cast<std::size_t>(i)], 500u) << "task " << i;
  }
}

}  // namespace
}  // namespace sim
}  // namespace mrm
