#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/periodic_task.h"

namespace mrm {
namespace sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.now(), 0u);
  EXPECT_EQ(simulator.now_seconds(), 0.0);
}

TEST(Simulator, TimeAdvancesToEventTimestamps) {
  Simulator simulator;
  std::vector<Tick> seen;
  simulator.ScheduleAt(100, [&] { seen.push_back(simulator.now()); });
  simulator.ScheduleAt(50, [&] { seen.push_back(simulator.now()); });
  simulator.Run();
  EXPECT_EQ(seen, (std::vector<Tick>{50, 100}));
  EXPECT_EQ(simulator.now(), 100u);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator simulator;
  Tick fired_at = 0;
  simulator.ScheduleAt(10, [&] {
    simulator.ScheduleAfter(5, [&] { fired_at = simulator.now(); });
  });
  simulator.Run();
  EXPECT_EQ(fired_at, 15u);
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator simulator;
  Tick fired_at = 0;
  simulator.ScheduleAt(10, [&] {
    simulator.ScheduleAt(3, [&] { fired_at = simulator.now(); });  // in the past
  });
  simulator.Run();
  EXPECT_EQ(fired_at, 10u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(10, [&] { ++fired; });
  simulator.ScheduleAt(100, [&] { ++fired; });
  const std::uint64_t executed = simulator.RunUntil(50);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), 50u);  // clock parked at the deadline
  EXPECT_EQ(simulator.pending_events(), 1u);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator simulator;
  for (int i = 0; i < 7; ++i) {
    simulator.ScheduleAt(static_cast<Tick>(i), [] {});
  }
  EXPECT_EQ(simulator.Run(), 7u);
  EXPECT_EQ(simulator.events_executed(), 7u);
}

TEST(Simulator, StopBreaksRun) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(1, [&] {
    ++fired;
    simulator.Stop();
  });
  simulator.ScheduleAt(2, [&] { ++fired; });
  simulator.Run();
  EXPECT_EQ(fired, 1);
  // A subsequent Run picks up the remaining event.
  simulator.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id = simulator.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(simulator.Cancel(id));
  simulator.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, SecondsConversionRoundTrips) {
  Simulator simulator(1e9);  // 1 ns ticks
  EXPECT_EQ(simulator.SecondsToTicks(1e-6), 1000u);
  EXPECT_DOUBLE_EQ(simulator.TicksToSeconds(2000), 2e-6);
}

TEST(Simulator, CustomTickRate) {
  Simulator simulator(1e12);  // 1 ps ticks
  EXPECT_EQ(simulator.SecondsToTicks(1e-9), 1000u);
}

TEST(Simulator, StepExecutesOne) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(5, [&] { ++fired; });
  simulator.ScheduleAt(6, [&] { ++fired; });
  EXPECT_TRUE(simulator.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(simulator.Step());
  EXPECT_FALSE(simulator.Step());
  EXPECT_EQ(fired, 2);
}

// Self-rescheduling chain whose behavior is a pure function of simulator
// state — no external mutable state besides the log — so a restored snapshot
// must replay the exact same firing sequence.
struct Chain {
  Simulator* simulator;
  std::vector<Tick>* log;
  Tick period;
  Tick last;
  void Fire() {
    log->push_back(simulator->now());
    if (simulator->now() < last) {
      simulator->ScheduleAfter(period, [this] { Fire(); });
    }
  }
};

TEST(SimulatorSaveRestore, ReplaysIdentically) {
  Simulator simulator;
  std::vector<Tick> log;
  Chain a{&simulator, &log, 37, 900};
  Chain b{&simulator, &log, 53, 900};
  simulator.ScheduleAt(5, [&a] { a.Fire(); });
  simulator.ScheduleAt(11, [&b] { b.Fire(); });
  simulator.RunUntil(300);

  Simulator::SavedState saved;
  simulator.SaveState(&saved);
  EXPECT_EQ(saved.now, simulator.now());
  EXPECT_EQ(saved.events_executed, simulator.events_executed());

  const std::size_t mark = log.size();
  simulator.RunUntil(900);
  const std::vector<Tick> first_leg(log.begin() + static_cast<std::ptrdiff_t>(mark), log.end());
  const Tick end_tick = simulator.now();
  const std::uint64_t end_events = simulator.events_executed();
  ASSERT_FALSE(first_leg.empty());

  // Roll back and replay: the same events fire at the same ticks, and the
  // clock and event counter land exactly where the first leg left them.
  simulator.RestoreState(saved);
  EXPECT_EQ(simulator.now(), saved.now);
  EXPECT_EQ(simulator.events_executed(), saved.events_executed);
  log.resize(mark);
  simulator.RunUntil(900);
  const std::vector<Tick> second_leg(log.begin() + static_cast<std::ptrdiff_t>(mark), log.end());
  EXPECT_EQ(first_leg, second_leg);
  EXPECT_EQ(simulator.now(), end_tick);
  EXPECT_EQ(simulator.events_executed(), end_events);
}

TEST(SimulatorSaveRestore, EventIdsSpanTheSnapshot) {
  Simulator simulator;
  int fired = 0;
  const EventId before = simulator.ScheduleAt(950, [&] { ++fired; });
  simulator.RunUntil(100);

  Simulator::SavedState saved;
  simulator.SaveState(&saved);
  // Scheduled between save and restore: dead after the rollback.
  const EventId between = simulator.ScheduleAt(960, [&] { ++fired; });
  simulator.RunUntil(200);

  simulator.RestoreState(saved);
  EXPECT_FALSE(simulator.Cancel(between)) << "id issued inside the span must die";
  EXPECT_TRUE(simulator.Cancel(before)) << "id issued before the snapshot must survive";
  simulator.Run();
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator simulator;
  int count = 0;
  PeriodicTask task(&simulator, 10, [&] { ++count; });
  simulator.RunUntil(55);
  EXPECT_EQ(count, 5);  // t = 10, 20, 30, 40, 50
  EXPECT_EQ(task.fire_count(), 5u);
}

TEST(PeriodicTask, StopCeasesFiring) {
  Simulator simulator;
  int count = 0;
  PeriodicTask task(&simulator, 10, [&] {
    ++count;
    if (count == 3) {
      task.Stop();
    }
  });
  simulator.RunUntil(1000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, PhaseOffsetsFirstFire) {
  Simulator simulator;
  Tick first = 0;
  PeriodicTask task(&simulator, 10, [&] {
    if (first == 0) {
      first = simulator.now();
    }
  }, /*phase=*/3);
  simulator.RunUntil(30);
  EXPECT_EQ(first, 3u);
}

TEST(PeriodicTask, PeriodChangeTakesEffect) {
  Simulator simulator;
  std::vector<Tick> fires;
  PeriodicTask task(&simulator, 10, [&] {
    fires.push_back(simulator.now());
    task.set_period(20);
  });
  simulator.RunUntil(60);
  ASSERT_GE(fires.size(), 3u);
  EXPECT_EQ(fires[0], 10u);
  EXPECT_EQ(fires[1], 30u);
  EXPECT_EQ(fires[2], 50u);
}

}  // namespace
}  // namespace sim
}  // namespace mrm
