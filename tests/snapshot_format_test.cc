// Snapshot container tests (DESIGN.md §13): codec round trips, writer/reader
// round trips, and the hostile-input matrix — truncation at every byte
// (section boundaries included), single-bit corruption anywhere in the file,
// version and fingerprint mismatches — each rejected with the right named
// ErrorKind and never undefined behavior.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/snapshot/codec.h"
#include "src/snapshot/format.h"

namespace mrm {
namespace snapshot {
namespace {

std::string TempPath(const std::string& name) { return ::testing::TempDir() + "/" + name; }

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(file);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

constexpr std::uint64_t kFingerprint = 0x1234567890abcdefull;

// A three-section snapshot exercised by every hostile-input test.
std::string WriteSample(const std::string& name) {
  SnapshotWriter writer(kFingerprint);
  Encoder* a = writer.AddSection(1);
  a->PutU64(42);
  a->PutDouble(3.25);
  Encoder* b = writer.AddSection(7);
  for (std::uint32_t i = 0; i < 100; ++i) {
    b->PutU32(i * i);
  }
  writer.AddSection(9);  // empty section
  const std::string path = TempPath(name);
  EXPECT_TRUE(writer.WriteFile(path).ok());
  return path;
}

TEST(Crc32Test, MatchesKnownVector) {
  // The classic IEEE 802.3 check value.
  const char* data = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, SeedChainsIncrementally) {
  const char* data = "123456789";
  const std::uint32_t once = Crc32(data, 9);
  const std::uint32_t first = Crc32(data, 4);
  EXPECT_EQ(Crc32(data + 4, 5, first), once);
}

TEST(CodecTest, RoundTripsEveryType) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutBool(true);
  enc.PutBool(false);
  enc.PutU32(0xDEADBEEFu);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutDouble(-0.0);
  enc.PutDouble(1.0 / 3.0);
  const std::uint8_t blob[] = {1, 2, 3, 4, 5};
  enc.PutBytes(blob, sizeof blob);

  Decoder dec(enc.bytes().data(), enc.bytes().size());
  EXPECT_EQ(dec.GetU8(), 0xAB);
  EXPECT_TRUE(dec.GetBool());
  EXPECT_FALSE(dec.GetBool());
  EXPECT_EQ(dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64(), 0x0123456789ABCDEFull);
  const double neg_zero = dec.GetDouble();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(dec.GetDouble(), 1.0 / 3.0);
  const std::vector<std::uint8_t> bytes = dec.GetBytes();
  EXPECT_EQ(bytes, std::vector<std::uint8_t>(blob, blob + sizeof blob));
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, TruncatedReadFailsSticky) {
  Encoder enc;
  enc.PutU32(77);
  Decoder dec(enc.bytes().data(), enc.bytes().size());
  EXPECT_EQ(dec.GetU32(), 77u);
  EXPECT_EQ(dec.GetU64(), 0u);  // past the end
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.GetU8(), 0u);  // sticky: still failed
  EXPECT_FALSE(dec.AtEnd());
}

TEST(CodecTest, CorruptLengthPrefixCannotAllocate) {
  Encoder enc;
  enc.PutU64(~std::uint64_t{0});  // claims ~16 EB of payload
  Decoder dec(enc.bytes().data(), enc.bytes().size());
  EXPECT_TRUE(dec.GetBytes().empty());
  EXPECT_FALSE(dec.ok());
}

TEST(SnapshotFormatTest, RoundTripsSections) {
  const std::string path = WriteSample("roundtrip.snap");
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path, kFingerprint).ok());

  const std::vector<std::uint8_t>* payload = reader.Find(1);
  ASSERT_NE(payload, nullptr);
  Decoder dec(payload->data(), payload->size());
  EXPECT_EQ(dec.GetU64(), 42u);
  EXPECT_EQ(dec.GetDouble(), 3.25);
  EXPECT_TRUE(dec.AtEnd());

  payload = reader.Find(7);
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->size(), 400u);
  payload = reader.Find(9);
  ASSERT_NE(payload, nullptr);
  EXPECT_TRUE(payload->empty());

  EXPECT_EQ(reader.Find(2), nullptr);
  const std::vector<std::uint8_t>* missing = nullptr;
  EXPECT_EQ(reader.Require(2, &missing).kind, ErrorKind::kMissingSection);
}

TEST(SnapshotFormatTest, MissingFileIsIoError) {
  SnapshotReader reader;
  EXPECT_EQ(reader.Open(TempPath("does_not_exist.snap"), kFingerprint).kind, ErrorKind::kIoError);
}

TEST(SnapshotFormatTest, WrongFingerprintIsConfigMismatch) {
  const std::string path = WriteSample("fingerprint.snap");
  SnapshotReader reader;
  EXPECT_EQ(reader.Open(path, kFingerprint ^ 1).kind, ErrorKind::kConfigMismatch);
}

TEST(SnapshotFormatTest, TruncationAtEveryLengthIsRejected) {
  const std::string path = WriteSample("trunc.snap");
  const std::vector<std::uint8_t> image = ReadFileBytes(path);
  const std::string cut_path = TempPath("trunc_cut.snap");
  for (std::size_t len = 0; len < image.size(); ++len) {
    WriteFileBytes(cut_path, std::vector<std::uint8_t>(image.begin(), image.begin() + len));
    SnapshotReader reader;
    const Error err = reader.Open(cut_path, kFingerprint);
    EXPECT_FALSE(err.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_NE(err.kind, ErrorKind::kIoError) << "prefix " << len;
  }
}

TEST(SnapshotFormatTest, TruncationAtSectionBoundariesIsTruncated) {
  const std::string path = WriteSample("trunc_bounds.snap");
  const std::vector<std::uint8_t> image = ReadFileBytes(path);

  // Parse the (valid) table to find each section's file extent.
  Decoder header(image.data() + 8, image.size() - 8);
  (void)header.GetU32();  // version
  const std::uint32_t count = header.GetU32();
  (void)header.GetU64();  // fingerprint
  ASSERT_EQ(count, 3u);
  std::vector<std::size_t> boundaries;
  for (std::uint32_t i = 0; i < count; ++i) {
    (void)header.GetU32();  // id
    const std::uint64_t offset = header.GetU64();
    const std::uint64_t size = header.GetU64();
    (void)header.GetU32();  // crc
    boundaries.push_back(static_cast<std::size_t>(offset));
    boundaries.push_back(static_cast<std::size_t>(offset + size));
  }

  const std::string cut_path = TempPath("trunc_bounds_cut.snap");
  for (const std::size_t boundary : boundaries) {
    if (boundary >= image.size()) {
      continue;  // the final boundary is EOF — that file is complete
    }
    WriteFileBytes(cut_path, std::vector<std::uint8_t>(image.begin(), image.begin() + boundary));
    SnapshotReader reader;
    EXPECT_EQ(reader.Open(cut_path, kFingerprint).kind, ErrorKind::kTruncated)
        << "cut at section boundary " << boundary;
  }
}

TEST(SnapshotFormatTest, BitFlipAnywhereIsRejected) {
  const std::string path = WriteSample("flip.snap");
  const std::vector<std::uint8_t> image = ReadFileBytes(path);
  const std::string flip_path = TempPath("flip_cut.snap");
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::vector<std::uint8_t> mutated = image;
    mutated[i] ^= 0x40;
    WriteFileBytes(flip_path, mutated);
    SnapshotReader reader;
    EXPECT_FALSE(reader.Open(flip_path, kFingerprint).ok()) << "flip at byte " << i << " accepted";
  }
}

TEST(SnapshotFormatTest, BitFlipKindsAreNamedPrecisely) {
  const std::string path = WriteSample("flip_kinds.snap");
  const std::vector<std::uint8_t> image = ReadFileBytes(path);
  const std::size_t header_size = 8 + 4 + 4 + 8 + 3 * 24;
  ASSERT_GT(image.size(), header_size + 4);
  const std::string flip_path = TempPath("flip_kinds_cut.snap");

  const auto kind_after_flip = [&](std::size_t index) {
    std::vector<std::uint8_t> mutated = image;
    mutated[index] ^= 0x01;
    WriteFileBytes(flip_path, mutated);
    SnapshotReader reader;
    return reader.Open(flip_path, kFingerprint).kind;
  };

  EXPECT_EQ(kind_after_flip(0), ErrorKind::kBadMagic);          // magic
  EXPECT_EQ(kind_after_flip(8), ErrorKind::kBadVersion);        // version
  EXPECT_EQ(kind_after_flip(16), ErrorKind::kHeaderCrc);        // fingerprint: CRC first
  EXPECT_EQ(kind_after_flip(24 + 4), ErrorKind::kHeaderCrc);    // table entry
  EXPECT_EQ(kind_after_flip(header_size + 1), ErrorKind::kHeaderCrc);  // stored CRC itself
  EXPECT_EQ(kind_after_flip(image.size() - 1), ErrorKind::kSectionCrc);  // payload
}

TEST(SnapshotFormatTest, FutureVersionWithValidCrcIsBadVersion) {
  const std::string path = WriteSample("version.snap");
  std::vector<std::uint8_t> image = ReadFileBytes(path);
  image[8] = static_cast<std::uint8_t>(kFormatVersion + 1);
  // Recompute the header CRC so only the version disagrees.
  const std::size_t header_size = 8 + 4 + 4 + 8 + 3 * 24;
  const std::uint32_t crc = Crc32(image.data(), header_size);
  for (int i = 0; i < 4; ++i) {
    image[header_size + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  const std::string out_path = TempPath("version_cut.snap");
  WriteFileBytes(out_path, image);
  SnapshotReader reader;
  EXPECT_EQ(reader.Open(out_path, kFingerprint).kind, ErrorKind::kBadVersion);
}

TEST(SnapshotFormatTest, AtomicWriteLeavesNoTempFile) {
  const std::string path = WriteSample("atomic.snap");
  // The publish path must not leave its temp file behind.
  const std::string tmp_prefix = path + ".tmp.";
  for (int pid_guess = 0; pid_guess < 1; ++pid_guess) {
    std::FILE* f = std::fopen((tmp_prefix + "0").c_str(), "rb");
    EXPECT_EQ(f, nullptr);
    if (f != nullptr) {
      std::fclose(f);
    }
  }
  // Overwriting an existing snapshot is also atomic (rename over).
  SnapshotWriter writer(kFingerprint);
  writer.AddSection(1)->PutU64(7);
  ASSERT_TRUE(writer.WriteFile(path).ok());
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path, kFingerprint).ok());
  const std::vector<std::uint8_t>* payload = reader.Find(1);
  ASSERT_NE(payload, nullptr);
  Decoder dec(payload->data(), payload->size());
  EXPECT_EQ(dec.GetU64(), 7u);
}

TEST(FingerprintTest, OrderAndValueSensitive) {
  Fingerprint a;
  a.MixU64(1);
  a.MixU64(2);
  Fingerprint b;
  b.MixU64(2);
  b.MixU64(1);
  EXPECT_NE(a.digest(), b.digest());

  Fingerprint c;
  c.MixString("stt-mram");
  Fingerprint d;
  d.MixString("stt-mrax");
  EXPECT_NE(c.digest(), d.digest());

  Fingerprint e;
  e.MixDouble(1.0);
  Fingerprint f;
  f.MixDouble(1.0 + 1e-15);
  EXPECT_NE(e.digest(), f.digest());
}

TEST(ErrorTest, ToStringNamesTheKind) {
  EXPECT_EQ(Error::Make(ErrorKind::kSectionCrc, "section 3 checksum mismatch").ToString(),
            "section-crc: section 3 checksum mismatch");
  EXPECT_EQ(Error::Ok().ToString(), "ok");
  EXPECT_STREQ(ErrorKindName(ErrorKind::kConfigMismatch), "config-mismatch");
}

}  // namespace
}  // namespace snapshot
}  // namespace mrm
