#include "src/tier/tiered_backend.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/workload/backend.h"

namespace mrm {
namespace tier {
namespace {

using workload::StepBatch;
using workload::Stream;
using workload::TierSpec;

TierSpec Hbm() {
  TierSpec spec;
  spec.name = "hbm";
  spec.capacity_bytes = 192ull * kGiB;
  spec.read_bw_bytes_per_s = 8e12;
  spec.write_bw_bytes_per_s = 8e12;
  spec.read_pj_per_bit = 6.0;
  spec.write_pj_per_bit = 6.0;
  spec.static_power_w = 60.0;
  spec.cost_per_gib = 12.0;
  return spec;
}

TierSpec Mrm() {
  TierSpec spec;
  spec.name = "mrm";
  spec.capacity_bytes = 1024ull * kGiB;
  spec.read_bw_bytes_per_s = 4e12;
  spec.write_bw_bytes_per_s = 0.2e12;
  spec.read_pj_per_bit = 1.5;
  spec.write_pj_per_bit = 3.0;
  spec.static_power_w = 2.0;
  spec.cost_per_gib = 5.4;
  return spec;
}

TEST(TieredBackend, RoutesWeightsToConfiguredTier) {
  Placement placement;
  placement.weights_tier = 1;  // MRM
  TieredBackend backend({Hbm(), Mrm()}, placement, 100ull * kGiB);
  StepBatch batch;
  batch.Read(Stream::kWeights, 1'000'000);
  backend.SubmitStep(batch);
  EXPECT_EQ(backend.tier_dynamic_joules()[0], 0.0);
  EXPECT_GT(backend.tier_dynamic_joules()[1], 0.0);
}

TEST(TieredBackend, ParallelTiersOverlap) {
  Placement placement;
  placement.weights_tier = 1;       // MRM
  placement.kv_hot_tier = 0;        // HBM
  placement.kv_cold_tier = 0;
  placement.activations_tier = 0;
  TieredBackend backend({Hbm(), Mrm()}, placement, 0);
  StepBatch batch;
  batch.Read(Stream::kWeights, 4'000'000'000ull);  // 1 ms on MRM (4 TB/s)
  batch.Read(Stream::kKvCache, 8'000'000'000ull);  // 1 ms on HBM (8 TB/s)
  // Parallel: max, not sum.
  EXPECT_NEAR(backend.SubmitStep(batch).seconds, 1e-3, 1e-6);
}

TEST(TieredBackend, SameTierSerializes) {
  Placement placement;  // everything on tier 0
  TieredBackend backend({Hbm()}, placement, 0);
  StepBatch batch;
  batch.Read(Stream::kWeights, 8'000'000'000ull);
  batch.Read(Stream::kKvCache, 8'000'000'000ull);
  EXPECT_NEAR(backend.SubmitStep(batch).seconds, 2e-3, 1e-6);
}

TEST(TieredBackend, StepCostEnergyMatchesLedgerDelta) {
  TieredBackend backend({Hbm(), Mrm()}, Placement{}, 0);
  StepBatch batch;
  batch.Read(Stream::kWeights, 1'000'000);
  batch.Write(Stream::kKvCache, 1'000'000);
  const double before = backend.EnergyJoules();
  const workload::StepCost cost = backend.SubmitStep(batch);
  EXPECT_GT(cost.energy_j, 0.0);
  EXPECT_NEAR(backend.EnergyJoules() - before, cost.energy_j, 1e-15);
}

TEST(TieredBackend, KvSplitsByHotFraction) {
  Placement placement;
  placement.kv_hot_tier = 0;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.25;
  TieredBackend backend({Hbm(), Mrm()}, placement, 0);
  StepBatch batch;
  batch.Read(Stream::kKvCache, 1'000'000'000ull);
  backend.SubmitStep(batch);
  // 25% of bits on HBM at 6 pJ, 75% on MRM at 1.5 pJ.
  const double hbm_j = 0.25e9 * 8 * 6.0 * 1e-12;
  const double mrm_j = 0.75e9 * 8 * 1.5 * 1e-12;
  EXPECT_NEAR(backend.tier_dynamic_joules()[0], hbm_j, hbm_j * 0.01);
  EXPECT_NEAR(backend.tier_dynamic_joules()[1], mrm_j, mrm_j * 0.01);
}

TEST(TieredBackend, StaticPowerSumsAllTiers) {
  TieredBackend backend({Hbm(), Mrm()}, Placement{}, 0);
  backend.AccountTime(1.0);
  EXPECT_NEAR(backend.static_joules(), 62.0, 1e-9);
}

TEST(TieredBackend, KvCapacityRespectsWeightsCarveOut) {
  Placement placement;  // weights + kv all on tier 0
  TieredBackend backend({Hbm()}, placement, 92ull * kGiB);
  EXPECT_EQ(backend.KvCapacityBytes(), 100ull * kGiB);
}

TEST(TieredBackend, KvCapacityLimitedByHotFraction) {
  Placement placement;
  placement.weights_tier = 1;
  placement.kv_hot_tier = 0;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.5;
  TieredBackend backend({Hbm(), Mrm()}, placement, 0);
  // Hot tier holds 50% of KV: total KV <= 192 GiB / 0.5 = 384 GiB.
  EXPECT_EQ(backend.KvCapacityBytes(), 384ull * kGiB);
}

TEST(TieredBackend, ScrubChargesEnergyOnResidentKv) {
  Placement placement;
  placement.kv_hot_tier = 1;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.0;
  TieredBackendOptions options;
  options.scrub_tier = 1;
  options.scrub_safe_age_s = 10.0;
  TieredBackend backend({Hbm(), Mrm()}, placement, 0, options);
  StepBatch batch;
  batch.Write(Stream::kKvCache, 1'000'000'000ull);
  backend.SubmitStep(batch);
  backend.AccountTime(10.0);  // one full scrub cycle
  EXPECT_GT(backend.scrub_joules(), 0.0);
  EXPECT_NEAR(static_cast<double>(backend.scrub_bytes()), 1e9, 1e7);
}

// Regression: OnKvFreed must shrink the scrub-tier resident set — a backend
// that drops the override keeps re-scrubbing freed KV forever. Pins the
// resident ledger exactly before and after each free.
TEST(TieredBackend, KvFreeShrinksScrubResidentSet) {
  Placement placement;
  placement.kv_hot_tier = 0;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.25;  // 75% of every KV byte is scrub-resident
  TieredBackendOptions options;
  options.scrub_tier = 1;
  options.scrub_safe_age_s = 10.0;
  TieredBackend backend({Hbm(), Mrm()}, placement, 0, options);
  StepBatch batch;
  batch.Write(Stream::kKvCache, 1'000'000'000ull);
  backend.SubmitStep(batch);
  EXPECT_EQ(backend.resident_scrub_kv_bytes(), 750'000'000ull);
  backend.OnKvFreed(400'000'000ull);  // 75% cold share = 300 MB off the tier
  EXPECT_EQ(backend.resident_scrub_kv_bytes(), 450'000'000ull);
  backend.AccountTime(10.0);
  EXPECT_EQ(backend.scrub_bytes(), 450'000'000ull);
  backend.OnKvFreed(600'000'000ull);  // frees the remainder
  EXPECT_EQ(backend.resident_scrub_kv_bytes(), 0u);
  backend.AccountTime(10.0);
  EXPECT_EQ(backend.scrub_bytes(), 450'000'000ull);  // no new scrub traffic
}

TEST(TieredBackend, KvFreeStopsScrubCharges) {
  Placement placement;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.0;
  TieredBackendOptions options;
  options.scrub_tier = 1;
  options.scrub_safe_age_s = 10.0;
  TieredBackend backend({Hbm(), Mrm()}, placement, 0, options);
  StepBatch batch;
  batch.Write(Stream::kKvCache, 1'000'000'000ull);
  backend.SubmitStep(batch);
  backend.OnKvFreed(1'000'000'000ull);
  backend.AccountTime(10.0);
  EXPECT_EQ(backend.scrub_bytes(), 0u);
}

TEST(TieredBackend, NoScrubTierNoCharges) {
  TieredBackend backend({Hbm(), Mrm()}, Placement{}, 0);
  StepBatch batch;
  batch.Write(Stream::kKvCache, 1'000'000'000ull);
  backend.SubmitStep(batch);
  backend.AccountTime(100.0);
  EXPECT_EQ(backend.scrub_joules(), 0.0);
}

TEST(TieredBackend, NameListsTiers) {
  TieredBackend backend({Hbm(), Mrm()}, Placement{}, 0);
  EXPECT_EQ(backend.name(), "tiered(hbm+mrm)");
}

TEST(TieredBackend, EnergyIncludesAllComponents) {
  TieredBackendOptions options;
  options.scrub_tier = 1;
  options.scrub_safe_age_s = 5.0;
  Placement placement;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.0;
  TieredBackend backend({Hbm(), Mrm()}, placement, 0, options);
  StepBatch batch;
  batch.Read(Stream::kWeights, 1000);
  batch.Write(Stream::kKvCache, 1000);
  backend.SubmitStep(batch);
  backend.AccountTime(1.0);
  const double total = backend.EnergyJoules();
  double parts = backend.static_joules() + backend.scrub_joules();
  for (double j : backend.tier_dynamic_joules()) {
    parts += j;
  }
  EXPECT_DOUBLE_EQ(total, parts);
}

}  // namespace
}  // namespace tier
}  // namespace mrm
