#include "src/tier/refresh_or_recompute.h"

#include <gtest/gtest.h>

namespace mrm {
namespace tier {
namespace {

RefreshOrRecomputeParams BaseParams() {
  RefreshOrRecomputeParams params;
  params.kv_bytes = 10ull << 30;         // 10 GiB context
  params.context_tokens = 4096;
  params.rewrite_j_per_byte = 5e-12;     // ~5 pJ/B MRM rewrite
  params.recompute_j_per_token = 0.5;    // prefill is expensive
  params.reuse_probability = 0.5;
  return params;
}

TEST(RefreshOrRecompute, RefreshWinsWhenReuseLikely) {
  RefreshOrRecomputeParams params = BaseParams();
  params.reuse_probability = 0.9;
  const RefreshDecision decision = DecideRefreshOrRecompute(params);
  EXPECT_TRUE(decision.refresh);
  EXPECT_LT(decision.refresh_cost_j, decision.expected_recompute_cost_j);
}

TEST(RefreshOrRecompute, DropWinsWhenReuseUnlikely) {
  RefreshOrRecomputeParams params = BaseParams();
  params.reuse_probability = 1e-6;
  const RefreshDecision decision = DecideRefreshOrRecompute(params);
  EXPECT_FALSE(decision.refresh);
}

TEST(RefreshOrRecompute, CostsComputedCorrectly) {
  RefreshOrRecomputeParams params = BaseParams();
  const RefreshDecision decision = DecideRefreshOrRecompute(params);
  EXPECT_NEAR(decision.refresh_cost_j,
              static_cast<double>(params.kv_bytes) * params.rewrite_j_per_byte, 1e-9);
  EXPECT_NEAR(decision.expected_recompute_cost_j, 0.5 * 4096 * 0.5, 1e-9);
}

TEST(RefreshOrRecompute, BreakEvenMatchesDecisionBoundary) {
  RefreshOrRecomputeParams params = BaseParams();
  const double break_even = BreakEvenReuseProbability(params);
  ASSERT_GT(break_even, 0.0);
  ASSERT_LT(break_even, 1.0);

  params.reuse_probability = break_even * 1.01;
  EXPECT_TRUE(DecideRefreshOrRecompute(params).refresh);
  params.reuse_probability = break_even * 0.99;
  EXPECT_FALSE(DecideRefreshOrRecompute(params).refresh);
}

TEST(RefreshOrRecompute, LatencyPenaltyFavorsRefresh) {
  RefreshOrRecomputeParams params = BaseParams();
  params.reuse_probability = BreakEvenReuseProbability(params) * 0.9;  // drop side
  ASSERT_FALSE(DecideRefreshOrRecompute(params).refresh);
  params.recompute_seconds_per_token = 0.01;
  params.latency_penalty_j_per_s = 100.0;  // latency matters a lot
  EXPECT_TRUE(DecideRefreshOrRecompute(params).refresh);
}

TEST(RefreshOrRecompute, ZeroRecomputeCostClampsBreakEven) {
  RefreshOrRecomputeParams params = BaseParams();
  params.recompute_j_per_token = 0.0;
  EXPECT_DOUBLE_EQ(BreakEvenReuseProbability(params), 1.0);
  EXPECT_FALSE(DecideRefreshOrRecompute(params).refresh);
}

TEST(RefreshOrRecompute, TinyContextAlwaysWorthRecompute) {
  // A short context is cheap to re-prefill but its KV is also small; scale
  // both and confirm the break-even is scale-free in context length.
  RefreshOrRecomputeParams small = BaseParams();
  small.kv_bytes = 1 << 20;
  small.context_tokens = 4;
  RefreshOrRecomputeParams large = BaseParams();
  large.kv_bytes = static_cast<std::uint64_t>(small.kv_bytes) * 1024;
  large.context_tokens = 4 * 1024;
  EXPECT_NEAR(BreakEvenReuseProbability(small), BreakEvenReuseProbability(large), 1e-12);
}

}  // namespace
}  // namespace tier
}  // namespace mrm
