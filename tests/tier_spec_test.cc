#include "src/tier/tier_spec.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/mem/stream_model.h"

namespace mrm {
namespace tier {
namespace {

TEST(TierSpec, FromDeviceMatchesStreamModel) {
  const mem::DeviceConfig config = mem::HBM3EConfig();
  const workload::TierSpec spec = TierSpecFromDevice(config, 1);
  EXPECT_NEAR(spec.read_bw_bytes_per_s, mem::StreamModel(config).EffectiveBandwidth(), 1.0);
  EXPECT_EQ(spec.capacity_bytes, config.capacity_bytes());
  EXPECT_GT(spec.static_power_w, 0.0);  // background + refresh
  EXPECT_GT(spec.read_pj_per_bit, config.energy.read_pj_per_bit);  // adds IO+ACT
}

TEST(TierSpec, DeviceCountScalesLinearly) {
  const mem::DeviceConfig config = mem::HBM3Config();
  const workload::TierSpec one = TierSpecFromDevice(config, 1);
  const workload::TierSpec eight = TierSpecFromDevice(config, 8);
  EXPECT_EQ(eight.capacity_bytes, one.capacity_bytes * 8);
  EXPECT_NEAR(eight.read_bw_bytes_per_s, one.read_bw_bytes_per_s * 8, 1.0);
  EXPECT_NEAR(eight.static_power_w, one.static_power_w * 8, 1e-9);
  EXPECT_DOUBLE_EQ(eight.cost_per_gib, one.cost_per_gib);
}

TEST(TierSpec, HbmCostsMoreThanLpddr) {
  const workload::TierSpec hbm = TierSpecFromDevice(mem::HBM3EConfig(), 1);
  const workload::TierSpec lpddr = TierSpecFromDevice(mem::LPDDR5XConfig(), 1);
  EXPECT_GT(hbm.cost_per_gib, lpddr.cost_per_gib);
  EXPECT_GT(hbm.read_bw_bytes_per_s, lpddr.read_bw_bytes_per_s);
}

TEST(TierSpec, MrmWriteBandwidthDependsOnRetention) {
  mrmcore::MrmDeviceConfig config;
  config.technology = cell::Technology::kSttMram;
  const workload::TierSpec relaxed = TierSpecFromMrm(config, 1, kHour);
  const workload::TierSpec nonvolatile = TierSpecFromMrm(config, 1, 10.0 * kYear);
  EXPECT_GT(relaxed.write_bw_bytes_per_s, nonvolatile.write_bw_bytes_per_s);
  EXPECT_LT(relaxed.write_pj_per_bit, nonvolatile.write_pj_per_bit);
  // Read path identical.
  EXPECT_DOUBLE_EQ(relaxed.read_bw_bytes_per_s, nonvolatile.read_bw_bytes_per_s);
}

TEST(TierSpec, MrmHasNoRefreshPower) {
  mrmcore::MrmDeviceConfig config;
  config.background_mw = 50.0;
  const workload::TierSpec spec = TierSpecFromMrm(config, 1, kHour);
  EXPECT_NEAR(spec.static_power_w, 0.05, 1e-9);
}

TEST(TierSpec, MrmNameEncodesRetention) {
  mrmcore::MrmDeviceConfig config;
  config.name = "mrm";
  const workload::TierSpec spec = TierSpecFromMrm(config, 1, 3600.0);
  EXPECT_NE(spec.name.find("mrm@"), std::string::npos);
}

TEST(TierSpec, SystemCostSumsTiers) {
  workload::TierSpec a;
  a.capacity_bytes = 10ull * kGiB;
  a.cost_per_gib = 12.0;
  workload::TierSpec b;
  b.capacity_bytes = 100ull * kGiB;
  b.cost_per_gib = 2.0;
  EXPECT_NEAR(SystemCostDollars({a, b}), 120.0 + 200.0, 1e-9);
}

TEST(TierSpec, HbmRefreshContributesToStaticPower) {
  mem::DeviceConfig config = mem::HBM3EConfig();
  const workload::TierSpec with_refresh = TierSpecFromDevice(config, 1);
  config.needs_refresh = false;
  const workload::TierSpec without = TierSpecFromDevice(config, 1);
  EXPECT_GT(with_refresh.static_power_w, without.static_power_w);
}

}  // namespace
}  // namespace tier
}  // namespace mrm
