// Cross-field validation of tier::Placement and tier::TieredBackendOptions:
// every rule rejects with a distinct message, and the valid corner cases
// stay accepted.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/tier/tiered_backend.h"

namespace mrm {
namespace tier {
namespace {

TEST(PlacementValidate, DefaultIsValidOnOneTier) {
  EXPECT_TRUE(Placement{}.Validate(1).ok());
}

TEST(PlacementValidate, RejectsNonPositiveTierCount) {
  const Status status = Placement{}.Validate(0);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("at least one tier"), std::string::npos);
}

TEST(PlacementValidate, RejectsWeightsTierOutOfRange) {
  Placement placement;
  placement.weights_tier = 2;
  const Status status = placement.Validate(2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("weights_tier"), std::string::npos);
}

TEST(PlacementValidate, RejectsNegativeKvHotTier) {
  Placement placement;
  placement.kv_hot_tier = -1;
  const Status status = placement.Validate(2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kv_hot_tier"), std::string::npos);
}

TEST(PlacementValidate, RejectsKvColdTierOutOfRange) {
  Placement placement;
  placement.kv_cold_tier = 1;
  const Status status = placement.Validate(1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kv_cold_tier"), std::string::npos);
}

TEST(PlacementValidate, RejectsActivationsTierOutOfRange) {
  Placement placement;
  placement.activations_tier = 3;
  const Status status = placement.Validate(2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("activations_tier"), std::string::npos);
}

TEST(PlacementValidate, RejectsHotFractionOutsideUnitInterval) {
  Placement placement;
  placement.kv_hot_fraction = 1.5;
  ASSERT_FALSE(placement.Validate(1).ok());
  placement.kv_hot_fraction = -0.1;
  const Status status = placement.Validate(1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kv_hot_fraction"), std::string::npos);
}

TEST(PlacementValidate, RejectsNanHotFraction) {
  Placement placement;
  placement.kv_hot_fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(placement.Validate(1).ok());
}

TEST(PlacementValidate, AcceptsBoundaryHotFractions) {
  Placement placement;
  placement.kv_hot_fraction = 0.0;
  EXPECT_TRUE(placement.Validate(1).ok());
  placement.kv_hot_fraction = 1.0;
  EXPECT_TRUE(placement.Validate(1).ok());
}

TEST(PlacementValidate, AcceptsTwoTierMrmLayout) {
  Placement placement;
  placement.weights_tier = 1;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.15;
  EXPECT_TRUE(placement.Validate(2).ok());
}

TEST(OptionsValidate, ScrubOffIsValidAndIgnoresSafeAge) {
  TieredBackendOptions options;  // scrub_tier = -1
  options.scrub_safe_age_s = -5.0;
  EXPECT_TRUE(options.Validate(1).ok());
}

TEST(OptionsValidate, RejectsScrubTierOutOfRange) {
  TieredBackendOptions options;
  options.scrub_tier = 2;
  options.scrub_safe_age_s = 10.0;
  const Status status = options.Validate(2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("scrub_tier"), std::string::npos);
}

TEST(OptionsValidate, RejectsScrubTierBelowMinusOne) {
  TieredBackendOptions options;
  options.scrub_tier = -2;
  EXPECT_FALSE(options.Validate(2).ok());
}

TEST(OptionsValidate, RejectsNonPositiveSafeAgeWhenScrubbing) {
  TieredBackendOptions options;
  options.scrub_tier = 0;
  options.scrub_safe_age_s = 0.0;
  const Status status = options.Validate(1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("scrub_safe_age_s"), std::string::npos);
}

TEST(OptionsValidate, RejectsInfiniteSafeAgeWhenScrubbing) {
  TieredBackendOptions options;
  options.scrub_tier = 0;
  options.scrub_safe_age_s = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(options.Validate(1).ok());
}

TEST(OptionsValidate, AcceptsScrubOnValidTier) {
  TieredBackendOptions options;
  options.scrub_tier = 1;
  options.scrub_safe_age_s = 3600.0;
  EXPECT_TRUE(options.Validate(2).ok());
}

}  // namespace
}  // namespace tier
}  // namespace mrm
