// Cross-field validation of tier::Placement and tier::TieredBackendOptions:
// every rule rejects with a distinct message, and the valid corner cases
// stay accepted.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/tier/tiered_backend.h"

namespace mrm {
namespace tier {
namespace {

TEST(PlacementValidate, DefaultIsValidOnOneTier) {
  EXPECT_TRUE(Placement{}.Validate(1).ok());
}

TEST(PlacementValidate, RejectsNonPositiveTierCount) {
  const Status status = Placement{}.Validate(0);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("at least one tier"), std::string::npos);
}

TEST(PlacementValidate, RejectsWeightsTierOutOfRange) {
  Placement placement;
  placement.weights_tier = 2;
  const Status status = placement.Validate(2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("weights_tier"), std::string::npos);
}

TEST(PlacementValidate, RejectsNegativeKvHotTier) {
  Placement placement;
  placement.kv_hot_tier = -1;
  const Status status = placement.Validate(2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kv_hot_tier"), std::string::npos);
}

TEST(PlacementValidate, RejectsKvColdTierOutOfRange) {
  Placement placement;
  placement.kv_cold_tier = 1;
  const Status status = placement.Validate(1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kv_cold_tier"), std::string::npos);
}

TEST(PlacementValidate, RejectsActivationsTierOutOfRange) {
  Placement placement;
  placement.activations_tier = 3;
  const Status status = placement.Validate(2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("activations_tier"), std::string::npos);
}

TEST(PlacementValidate, RejectsHotFractionOutsideUnitInterval) {
  Placement placement;
  placement.kv_hot_fraction = 1.5;
  ASSERT_FALSE(placement.Validate(1).ok());
  placement.kv_hot_fraction = -0.1;
  const Status status = placement.Validate(1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kv_hot_fraction"), std::string::npos);
}

TEST(PlacementValidate, RejectsNanHotFraction) {
  Placement placement;
  placement.kv_hot_fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(placement.Validate(1).ok());
}

TEST(PlacementValidate, AcceptsBoundaryHotFractions) {
  Placement placement;
  placement.kv_hot_fraction = 0.0;
  EXPECT_TRUE(placement.Validate(1).ok());
  placement.kv_hot_fraction = 1.0;
  EXPECT_TRUE(placement.Validate(1).ok());
}

TEST(PlacementValidate, AcceptsTwoTierMrmLayout) {
  Placement placement;
  placement.weights_tier = 1;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.15;
  EXPECT_TRUE(placement.Validate(2).ok());
}

TEST(OptionsValidate, ScrubOffIsValidAndIgnoresSafeAge) {
  TieredBackendOptions options;  // scrub_tier = -1
  options.scrub_safe_age_s = -5.0;
  EXPECT_TRUE(options.Validate(1).ok());
}

TEST(OptionsValidate, RejectsScrubTierOutOfRange) {
  TieredBackendOptions options;
  options.scrub_tier = 2;
  options.scrub_safe_age_s = 10.0;
  const Status status = options.Validate(2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("scrub_tier"), std::string::npos);
}

TEST(OptionsValidate, RejectsScrubTierBelowMinusOne) {
  TieredBackendOptions options;
  options.scrub_tier = -2;
  EXPECT_FALSE(options.Validate(2).ok());
}

TEST(OptionsValidate, RejectsNonPositiveSafeAgeWhenScrubbing) {
  TieredBackendOptions options;
  options.scrub_tier = 0;
  options.scrub_safe_age_s = 0.0;
  const Status status = options.Validate(1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("scrub_safe_age_s"), std::string::npos);
}

TEST(OptionsValidate, RejectsInfiniteSafeAgeWhenScrubbing) {
  TieredBackendOptions options;
  options.scrub_tier = 0;
  options.scrub_safe_age_s = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(options.Validate(1).ok());
}

TEST(OptionsValidate, AcceptsScrubOnValidTier) {
  TieredBackendOptions options;
  options.scrub_tier = 1;
  options.scrub_safe_age_s = 3600.0;
  EXPECT_TRUE(options.Validate(2).ok());
}

// --- Per-stream scrub ages (policy layer, DESIGN.md §14) --------------------

TEST(OptionsValidate, RejectsNegativeKvScrubAge) {
  TieredBackendOptions options;
  options.kv_scrub_age_s = -1.0;
  const Status status = options.Validate(1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kv_scrub_age_s"), std::string::npos);
}

TEST(OptionsValidate, RejectsNanKvScrubAgeEvenWithScrubOff) {
  // Unlike the deprecated alias, the per-stream fields are first-class: a
  // poisoned value is rejected regardless of scrub_tier.
  TieredBackendOptions options;  // scrub_tier = -1
  options.kv_scrub_age_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(options.Validate(1).ok());
}

TEST(OptionsValidate, RejectsNegativeOrNonFiniteWeightsScrubAge) {
  TieredBackendOptions options;
  options.weights_scrub_age_s = -3600.0;
  const Status negative = options.Validate(1);
  ASSERT_FALSE(negative.ok());
  EXPECT_NE(negative.message().find("weights_scrub_age_s"), std::string::npos);
  options.weights_scrub_age_s = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(options.Validate(1).ok());
}

TEST(OptionsValidate, KvScrubAgeOverridesTheDeprecatedAlias) {
  TieredBackendOptions options;
  options.scrub_safe_age_s = 3600.0;
  EXPECT_DOUBLE_EQ(options.EffectiveKvScrubAge(), 3600.0);  // alias inherited
  options.kv_scrub_age_s = 120.0;
  EXPECT_DOUBLE_EQ(options.EffectiveKvScrubAge(), 120.0);   // explicit wins
}

TEST(OptionsValidate, ExplicitKvAgeSatisfiesTheScrubTierRule) {
  TieredBackendOptions options;
  options.scrub_tier = 0;
  options.scrub_safe_age_s = 0.0;  // alias alone would be rejected
  options.kv_scrub_age_s = 600.0;
  EXPECT_TRUE(options.Validate(1).ok());
}

TEST(OptionsValidate, CrossFieldRejectsKvAgeWithoutScrubTier) {
  TieredBackendOptions options;  // scrub_tier = -1
  options.kv_scrub_age_s = 600.0;
  Placement placement;
  const Status status = options.Validate(placement, 1);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kv_scrub_age_s"), std::string::npos);
  EXPECT_NE(status.message().find("no scrub tier"), std::string::npos);
}

TEST(OptionsValidate, CrossFieldRejectsKvAgeWhenNoKvTierOnScrubTier) {
  TieredBackendOptions options;
  options.scrub_tier = 1;
  options.kv_scrub_age_s = 600.0;
  Placement placement;  // every stream on tier 0
  placement.weights_tier = 1;  // weights there, but no KV tier
  const Status status = options.Validate(placement, 2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kv_scrub_age_s"), std::string::npos);
}

TEST(OptionsValidate, CrossFieldRejectsWeightsAgeOffTheScrubTier) {
  TieredBackendOptions options;
  options.scrub_tier = 1;
  options.weights_scrub_age_s = 3600.0;
  Placement placement;
  placement.kv_cold_tier = 1;  // KV on the scrub tier, weights are not
  const Status status = options.Validate(placement, 2);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("weights_scrub_age_s"), std::string::npos);
}

TEST(OptionsValidate, CrossFieldAcceptsConsistentPerStreamAges) {
  TieredBackendOptions options;
  options.scrub_tier = 1;
  options.kv_scrub_age_s = 600.0;
  options.weights_scrub_age_s = 3600.0;
  Placement placement;
  placement.weights_tier = 1;
  placement.kv_cold_tier = 1;
  placement.kv_hot_fraction = 0.15;
  EXPECT_TRUE(options.Validate(placement, 2).ok());
}

}  // namespace
}  // namespace tier
}  // namespace mrm
