#include "src/workload/backend.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace mrm {
namespace workload {
namespace {

TierSpec SimpleTier() {
  TierSpec spec;
  spec.name = "test-tier";
  spec.capacity_bytes = 100ull * kGiB;
  spec.read_bw_bytes_per_s = 1e12;
  spec.write_bw_bytes_per_s = 0.5e12;
  spec.read_pj_per_bit = 2.0;
  spec.write_pj_per_bit = 4.0;
  spec.static_power_w = 10.0;
  return spec;
}

TEST(AnalyticBackend, StepTimeIsSerializedTransferTime) {
  AnalyticBackend backend(SimpleTier(), 0);
  backend.BeginStep();
  backend.Read(Stream::kWeights, 1'000'000'000ull);   // 1 GB at 1 TB/s = 1 ms
  backend.Write(Stream::kKvCache, 500'000'000ull);    // 0.5 GB at 0.5 TB/s = 1 ms
  EXPECT_NEAR(backend.EndStep(), 2e-3, 1e-9);
}

TEST(AnalyticBackend, StepResetsOnBegin) {
  AnalyticBackend backend(SimpleTier(), 0);
  backend.BeginStep();
  backend.Read(Stream::kWeights, 1'000'000'000ull);
  backend.EndStep();
  backend.BeginStep();
  EXPECT_EQ(backend.EndStep(), 0.0);
}

TEST(AnalyticBackend, DynamicEnergyPerBit) {
  AnalyticBackend backend(SimpleTier(), 0);
  backend.BeginStep();
  backend.Read(Stream::kWeights, 1000);
  // 8000 bits x 2 pJ = 16 nJ.
  EXPECT_NEAR(backend.dynamic_joules(), 16e-9, 1e-15);
  backend.Write(Stream::kKvCache, 1000);
  EXPECT_NEAR(backend.dynamic_joules(), 16e-9 + 32e-9, 1e-15);
}

TEST(AnalyticBackend, StaticEnergyFromTime) {
  AnalyticBackend backend(SimpleTier(), 0);
  backend.AccountTime(2.0);
  EXPECT_NEAR(backend.static_joules(), 20.0, 1e-12);
  EXPECT_NEAR(backend.EnergyJoules(), 20.0, 1e-12);
}

TEST(AnalyticBackend, KvCapacityExcludesWeights) {
  AnalyticBackend backend(SimpleTier(), 40ull * kGiB);
  EXPECT_EQ(backend.KvCapacityBytes(), 60ull * kGiB);
}

TEST(AnalyticBackend, UnlimitedCapacityPropagates) {
  TierSpec spec = SimpleTier();
  spec.capacity_bytes = 0;
  AnalyticBackend backend(spec, 40ull * kGiB);
  EXPECT_EQ(backend.KvCapacityBytes(), 0u);
}

TEST(AnalyticBackend, WeightsLargerThanCapacityLeavesMinimum) {
  AnalyticBackend backend(SimpleTier(), 200ull * kGiB);
  EXPECT_EQ(backend.KvCapacityBytes(), 1u);
}

TEST(AnalyticBackend, NameFromSpec) {
  AnalyticBackend backend(SimpleTier(), 0);
  EXPECT_EQ(backend.name(), "test-tier");
}

}  // namespace
}  // namespace workload
}  // namespace mrm
