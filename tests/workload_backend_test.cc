#include "src/workload/backend.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace mrm {
namespace workload {
namespace {

TierSpec SimpleTier() {
  TierSpec spec;
  spec.name = "test-tier";
  spec.capacity_bytes = 100ull * kGiB;
  spec.read_bw_bytes_per_s = 1e12;
  spec.write_bw_bytes_per_s = 0.5e12;
  spec.read_pj_per_bit = 2.0;
  spec.write_pj_per_bit = 4.0;
  spec.static_power_w = 10.0;
  return spec;
}

TEST(StepBatch, AccumulatesAndClears) {
  StepBatch batch;
  EXPECT_TRUE(batch.empty());
  batch.Read(Stream::kWeights, 100);
  batch.Write(Stream::kKvCache, 200);
  ASSERT_EQ(batch.transfers().size(), 2u);
  EXPECT_FALSE(batch.transfers()[0].is_write);
  EXPECT_EQ(batch.transfers()[0].stream, Stream::kWeights);
  EXPECT_EQ(batch.transfers()[0].bytes, 100u);
  EXPECT_TRUE(batch.transfers()[1].is_write);
  EXPECT_EQ(batch.transfers()[1].stream, Stream::kKvCache);
  EXPECT_EQ(batch.transfers()[1].bytes, 200u);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
}

TEST(AnalyticBackend, StepTimeIsSerializedTransferTime) {
  AnalyticBackend backend(SimpleTier(), 0);
  StepBatch batch;
  batch.Read(Stream::kWeights, 1'000'000'000ull);   // 1 GB at 1 TB/s = 1 ms
  batch.Write(Stream::kKvCache, 500'000'000ull);    // 0.5 GB at 0.5 TB/s = 1 ms
  EXPECT_NEAR(backend.SubmitStep(batch).seconds, 2e-3, 1e-9);
}

TEST(AnalyticBackend, EmptyBatchIsFree) {
  AnalyticBackend backend(SimpleTier(), 0);
  const StepCost cost = backend.SubmitStep(StepBatch());
  EXPECT_EQ(cost.seconds, 0.0);
  EXPECT_EQ(cost.energy_j, 0.0);
}

TEST(AnalyticBackend, StepsAreIndependent) {
  AnalyticBackend backend(SimpleTier(), 0);
  StepBatch batch;
  batch.Read(Stream::kWeights, 1'000'000'000ull);
  const double first = backend.SubmitStep(batch).seconds;
  // The same batch resubmitted costs the same: no state leaks across steps.
  EXPECT_DOUBLE_EQ(backend.SubmitStep(batch).seconds, first);
}

TEST(AnalyticBackend, DynamicEnergyPerBit) {
  AnalyticBackend backend(SimpleTier(), 0);
  StepBatch batch;
  batch.Read(Stream::kWeights, 1000);
  // 8000 bits x 2 pJ = 16 nJ.
  const StepCost read_cost = backend.SubmitStep(batch);
  EXPECT_NEAR(read_cost.energy_j, 16e-9, 1e-15);
  EXPECT_NEAR(backend.dynamic_joules(), 16e-9, 1e-15);
  batch.Clear();
  batch.Write(Stream::kKvCache, 1000);
  EXPECT_NEAR(backend.SubmitStep(batch).energy_j, 32e-9, 1e-15);
  EXPECT_NEAR(backend.dynamic_joules(), 16e-9 + 32e-9, 1e-15);
}

TEST(AnalyticBackend, StaticEnergyFromTime) {
  AnalyticBackend backend(SimpleTier(), 0);
  backend.AccountTime(2.0);
  EXPECT_NEAR(backend.static_joules(), 20.0, 1e-12);
  EXPECT_NEAR(backend.EnergyJoules(), 20.0, 1e-12);
}

TEST(AnalyticBackend, KvCapacityExcludesWeights) {
  AnalyticBackend backend(SimpleTier(), 40ull * kGiB);
  EXPECT_EQ(backend.KvCapacityBytes(), 60ull * kGiB);
}

TEST(AnalyticBackend, UnlimitedCapacityPropagates) {
  TierSpec spec = SimpleTier();
  spec.capacity_bytes = 0;
  AnalyticBackend backend(spec, 40ull * kGiB);
  EXPECT_EQ(backend.KvCapacityBytes(), 0u);
}

TEST(AnalyticBackend, WeightsLargerThanCapacityLeavesMinimum) {
  AnalyticBackend backend(SimpleTier(), 200ull * kGiB);
  EXPECT_EQ(backend.KvCapacityBytes(), 1u);
}

TEST(AnalyticBackend, NameFromSpec) {
  AnalyticBackend backend(SimpleTier(), 0);
  EXPECT_EQ(backend.name(), "test-tier");
}

}  // namespace
}  // namespace workload
}  // namespace mrm
