#include "src/workload/inference_engine.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/workload/backend.h"

namespace mrm {
namespace workload {
namespace {

TierSpec FastTier() {
  TierSpec spec;
  spec.name = "hbm-like";
  spec.capacity_bytes = 0;  // unlimited unless a test says otherwise
  spec.read_bw_bytes_per_s = 8e12;
  spec.write_bw_bytes_per_s = 8e12;
  spec.read_pj_per_bit = 4.0;
  spec.write_pj_per_bit = 4.0;
  spec.static_power_w = 100.0;
  return spec;
}

FoundationModelConfig TinyModel() {
  FoundationModelConfig model;
  model.name = "tiny";
  model.parameters = 1'000'000'000ull;  // 1B params -> 2 GB weights
  model.layers = 16;
  model.heads = 16;
  model.kv_heads = 4;
  model.head_dim = 64;
  model.max_context_tokens = 4096;
  return model;
}

EngineConfig TinyEngine() {
  EngineConfig config;
  config.model = TinyModel();
  config.max_batch = 4;
  config.compute_tflops = 100.0;
  config.prefill_chunk_tokens = 256;
  return config;
}

std::vector<InferenceRequest> MakeRequests(int count, int prompt, int output) {
  std::vector<InferenceRequest> requests;
  for (int i = 0; i < count; ++i) {
    InferenceRequest request;
    request.id = static_cast<std::uint64_t>(i + 1);
    request.arrival_s = 0.0;
    request.prompt_tokens = prompt;
    request.output_tokens = output;
    requests.push_back(request);
  }
  return requests;
}

TEST(Engine, CompletesAllRequests) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  InferenceEngine engine(TinyEngine(), &backend);
  const EngineSummary summary = engine.Run(MakeRequests(5, 128, 16));
  EXPECT_EQ(summary.requests_completed, 5u);
  EXPECT_EQ(summary.decode_tokens, 5u * 16);
  EXPECT_EQ(summary.prefill_tokens, 5u * 128);
  EXPECT_GT(summary.duration_s, 0.0);
}

TEST(Engine, EmptyRequestListIsEmptySummary) {
  AnalyticBackend backend(FastTier(), 0);
  InferenceEngine engine(TinyEngine(), &backend);
  const EngineSummary summary = engine.Run({});
  EXPECT_EQ(summary.steps, 0u);
  EXPECT_EQ(summary.duration_s, 0.0);
}

TEST(Engine, ReadWriteRatioExceeds1000ToOne) {
  // The paper's E2 claim: decode reads weights + whole KV per token but
  // writes only one vector.
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  InferenceEngine engine(TinyEngine(), &backend);
  const EngineSummary summary = engine.Run(MakeRequests(4, 512, 128));
  EXPECT_GT(summary.read_write_ratio(), 1000.0);
}

TEST(Engine, WeightsReadOncePerStepRegardlessOfBatch) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  InferenceEngine engine(TinyEngine(), &backend);
  const EngineSummary summary = engine.Run(MakeRequests(4, 64, 32));
  // weight_read_bytes == steps x weight_bytes exactly.
  EXPECT_EQ(summary.weight_read_bytes, summary.steps * TinyModel().weight_bytes());
}

TEST(Engine, BatchingImprovesTokensPerSecond) {
  auto run_with_batch = [](int max_batch) {
    AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
    EngineConfig config = TinyEngine();
    config.max_batch = max_batch;
    InferenceEngine engine(config, &backend);
    return engine.Run(MakeRequests(8, 64, 64)).decode_tokens_per_s();
  };
  const double unbatched = run_with_batch(1);
  const double batched = run_with_batch(8);
  EXPECT_GT(batched, unbatched * 2.0);
}

TEST(Engine, KvBytesGrowDuringDecode) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  InferenceEngine engine(TinyEngine(), &backend);
  const EngineSummary summary = engine.Run(MakeRequests(1, 100, 50));
  const std::uint64_t kv_per_token = TinyModel().kv_bytes_per_token();
  // Writes: prefill 100 vectors + decode 50 vectors.
  EXPECT_EQ(summary.kv_write_bytes, kv_per_token * 150);
  // Peak resident KV close to the end-of-run context size.
  EXPECT_GE(summary.peak_kv_bytes, static_cast<double>(kv_per_token) * 140);
}

TEST(Engine, TtftRecordedPerRequest) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  InferenceEngine engine(TinyEngine(), &backend);
  const EngineSummary summary = engine.Run(MakeRequests(3, 64, 8));
  EXPECT_EQ(summary.ttft_ms.count(), 3u);
  EXPECT_EQ(summary.e2e_latency_s.count(), 3u);
  EXPECT_GT(summary.ttft_ms.mean(), 0.0);
}

TEST(Engine, MemoryBoundOnSlowMemoryComputeBoundOnFast) {
  // Slow memory, huge compute -> memory bound.
  TierSpec slow = FastTier();
  slow.read_bw_bytes_per_s = 1e11;
  slow.write_bw_bytes_per_s = 1e11;
  AnalyticBackend slow_backend(slow, TinyModel().weight_bytes());
  EngineConfig config = TinyEngine();
  config.compute_tflops = 10000.0;
  InferenceEngine memory_bound(config, &slow_backend);
  const EngineSummary mb = memory_bound.Run(MakeRequests(2, 64, 32));
  EXPECT_GT(mb.memory_bound_fraction(), 0.95);

  // Fast memory, weak compute -> compute bound.
  TierSpec fast = FastTier();
  fast.read_bw_bytes_per_s = 1e14;
  fast.write_bw_bytes_per_s = 1e14;
  AnalyticBackend fast_backend(fast, TinyModel().weight_bytes());
  config.compute_tflops = 1.0;
  InferenceEngine compute_bound(config, &fast_backend);
  const EngineSummary cb = compute_bound.Run(MakeRequests(2, 64, 32));
  EXPECT_LT(cb.memory_bound_fraction(), 0.05);
}

TEST(Engine, KvCapacityLimitsBatch) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  EngineConfig config = TinyEngine();
  config.max_batch = 8;
  // Room for only ~2 concurrent requests' KV.
  config.kv_capacity_bytes = TinyModel().kv_bytes_per_token() * 96 * 2;
  InferenceEngine engine(config, &backend);
  const EngineSummary summary = engine.Run(MakeRequests(8, 64, 32));
  EXPECT_EQ(summary.requests_completed, 8u);  // all served, just slower
  EXPECT_LT(summary.mean_batch, 3.0);
}

TEST(Engine, ImpossibleRequestRejected) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  EngineConfig config = TinyEngine();
  config.kv_capacity_bytes = TinyModel().kv_bytes_per_token() * 10;  // tiny
  InferenceEngine engine(config, &backend);
  const EngineSummary summary = engine.Run(MakeRequests(1, 64, 32));
  EXPECT_EQ(summary.requests_completed, 0u);
  EXPECT_EQ(summary.requests_rejected, 1u);
}

TEST(Engine, LateArrivalsIdleTheEngine) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  InferenceEngine engine(TinyEngine(), &backend);
  std::vector<InferenceRequest> requests = MakeRequests(2, 64, 16);
  requests[1].arrival_s = 100.0;  // long gap
  const EngineSummary summary = engine.Run(requests);
  EXPECT_EQ(summary.requests_completed, 2u);
  EXPECT_GT(summary.duration_s, 100.0);
}

TEST(Engine, TraceRecordsAllStreams) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  TraceSink sink;
  InferenceEngine engine(TinyEngine(), &backend, &sink);
  engine.Run(MakeRequests(2, 64, 8));
  bool saw_weights = false;
  bool saw_kv = false;
  bool saw_act = false;
  for (const auto& extent : sink.extents()) {
    saw_weights |= extent.stream == Stream::kWeights;
    saw_kv |= extent.stream == Stream::kKvCache;
    saw_act |= extent.stream == Stream::kActivations;
  }
  EXPECT_TRUE(saw_weights);
  EXPECT_TRUE(saw_kv);
  EXPECT_TRUE(saw_act);
}

TEST(Engine, TraceShowsPredictablePattern) {
  // The E4 properties hold on an engine-generated trace.
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  TraceSink sink;
  InferenceEngine engine(TinyEngine(), &backend, &sink);
  engine.Run(MakeRequests(3, 128, 32));
  const PredictabilityReport report = AnalyzeTrace(sink.extents());
  EXPECT_GT(report.read_sequential_fraction, 0.5);
  EXPECT_GT(report.write_append_fraction, 0.5);
  EXPECT_DOUBLE_EQ(report.step_order_stability, 1.0);
}

TEST(Engine, EnergyAttributedToBackend) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  InferenceEngine engine(TinyEngine(), &backend);
  const EngineSummary summary = engine.Run(MakeRequests(2, 64, 16));
  EXPECT_GT(summary.backend_energy_j, 0.0);
  EXPECT_NEAR(summary.backend_energy_j, backend.EnergyJoules(), 1e-12);
  EXPECT_GT(summary.energy_per_decode_token_j(), 0.0);
}

TEST(Engine, MeanBatchBounded) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  EngineConfig config = TinyEngine();
  config.max_batch = 4;
  InferenceEngine engine(config, &backend);
  const EngineSummary summary = engine.Run(MakeRequests(16, 32, 32));
  EXPECT_GT(summary.mean_batch, 1.0);
  EXPECT_LE(summary.mean_batch, 4.0);
}

TEST(Engine, KvCompressionReducesBytesMovedNotLedger) {
  AnalyticBackend backend(FastTier(), TinyModel().weight_bytes());
  EngineConfig config = TinyEngine();
  config.kv_compression_ratio = 0.5;
  InferenceEngine engine(config, &backend);
  const EngineSummary summary = engine.Run(MakeRequests(2, 128, 32));
  // Logical ledger unchanged semantics.
  EXPECT_EQ(summary.kv_write_bytes,
            TinyModel().kv_bytes_per_token() * (summary.prefill_tokens + summary.decode_tokens));
  // Physical traffic roughly halved.
  const double ratio = static_cast<double>(summary.kv_moved_bytes) /
                       static_cast<double>(summary.kv_read_bytes + summary.kv_write_bytes);
  EXPECT_NEAR(ratio, 0.5, 0.01);
}

TEST(Engine, KvCompressionSpeedsUpMemoryBoundDecode) {
  TierSpec slow = FastTier();
  slow.read_bw_bytes_per_s = 2e11;
  slow.write_bw_bytes_per_s = 2e11;
  auto run_with_ratio = [&](double ratio) {
    AnalyticBackend backend(slow, TinyModel().weight_bytes());
    EngineConfig config = TinyEngine();
    config.compute_tflops = 10000.0;  // memory bound
    config.kv_compression_ratio = ratio;
    InferenceEngine engine(config, &backend);
    return engine.Run(MakeRequests(4, 256, 128)).duration_s;
  };
  EXPECT_LT(run_with_ratio(0.25), run_with_ratio(1.0));
}

TEST(Engine, KvCodecComputeCostCanDominate) {
  // With an expensive codec on a weak accelerator, compression slows the
  // run down — the limitation the paper notes for these mitigations.
  TierSpec fast = FastTier();
  auto run = [&](double ratio, double codec_flops) {
    AnalyticBackend backend(fast, TinyModel().weight_bytes());
    EngineConfig config = TinyEngine();
    config.compute_tflops = 20.0;  // weak accelerator
    config.kv_compression_ratio = ratio;
    config.kv_codec_flops_per_byte = codec_flops;
    InferenceEngine engine(config, &backend);
    return engine.Run(MakeRequests(2, 128, 32)).duration_s;
  };
  EXPECT_GT(run(0.5, 500.0), run(1.0, 0.0));
}

TEST(Engine, InvalidCompressionRatioRejected) {
  AnalyticBackend backend(FastTier(), 0);
  EngineConfig config = TinyEngine();
  config.kv_compression_ratio = 0.0;
  EXPECT_DEATH(InferenceEngine engine(config, &backend), "kv_compression_ratio");
}

}  // namespace
}  // namespace workload
}  // namespace mrm
