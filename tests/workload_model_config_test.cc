#include "src/workload/model_config.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace mrm {
namespace workload {
namespace {

TEST(ModelConfig, AllPresetsValid) {
  for (const auto& model : AllModels()) {
    EXPECT_TRUE(model.Validate().ok()) << model.name;
  }
}

TEST(ModelConfig, LookupByName) {
  for (const auto& model : AllModels()) {
    auto found = ModelByName(model.name);
    ASSERT_TRUE(found.ok()) << model.name;
    EXPECT_EQ(found.value().parameters, model.parameters);
  }
  EXPECT_FALSE(ModelByName("gpt9000").ok());
}

TEST(ModelConfig, Llama70BWeightBytes) {
  // 70e9 params x 2 B = 140 GB (paper §2: 250 GB - 1 TB for >500 B models;
  // 70 B at FP16 sits at 140 GB).
  EXPECT_EQ(Llama2_70B().weight_bytes(), 140'000'000'000ull);
}

TEST(ModelConfig, Llama70BKvVectorSizeGqa) {
  // 2 x 80 layers x 8 KV heads x 128 dim x 2 B = 320 KiB per token.
  EXPECT_EQ(Llama2_70B().kv_bytes_per_token(), 327'680ull);
}

TEST(ModelConfig, MhaVariantVectorIsFewMB) {
  // Paper §2: "each vector is typically a few MBs" — MHA-class models.
  const std::uint64_t vector = Llama2_70B_MHA().kv_bytes_per_token();
  EXPECT_GE(vector, 2ull * kMiB);
  EXPECT_LE(vector, 4ull * kMiB);
}

TEST(ModelConfig, Gpt3VectorAlsoMBScale) {
  const std::uint64_t vector = Gpt3_175B().kv_bytes_per_token();
  EXPECT_GE(vector, 4ull * kMiB);
}

TEST(ModelConfig, KvCacheGrowsToTensOfGB) {
  // Paper §2: "the KV cache usually grows to a few tens of GBs".
  const FoundationModelConfig model = Llama2_70B_MHA();
  const std::uint64_t cache = model.kv_cache_bytes(8192);
  EXPECT_GE(cache, 20ull * kGiB);
  EXPECT_LE(cache, 80ull * kGiB);
}

TEST(ModelConfig, ActivationsOrderOfMagnitudeSmaller) {
  // Paper §2: activations are ~10x smaller than weights and KV cache.
  const FoundationModelConfig model = Llama2_70B();
  const std::uint64_t act = model.activation_bytes(32);
  EXPECT_LT(act, model.weight_bytes() / 10);
  EXPECT_LT(act, model.kv_cache_bytes(2048) / 5);
}

TEST(ModelConfig, FrontierModelWeightsApproachTB) {
  // Paper §2: large models represent 250 GB to over 1 TB.
  const std::uint64_t weights = Frontier_1T().weight_bytes();
  EXPECT_GE(weights, 500ull * kGB);
  EXPECT_LE(weights, 2ull * kTB);
}

TEST(ModelConfig, ValidationCatchesBadConfigs) {
  FoundationModelConfig model = Llama2_70B();
  model.kv_heads = model.heads + 1;
  EXPECT_FALSE(model.Validate().ok());
  model = Llama2_70B();
  model.layers = 0;
  EXPECT_FALSE(model.Validate().ok());
  model = Llama2_70B();
  model.bytes_per_param = 0;
  EXPECT_FALSE(model.Validate().ok());
}

TEST(ModelConfig, DModelConsistent) {
  const FoundationModelConfig model = Llama2_70B();
  EXPECT_EQ(model.d_model(), 64 * 128);
}

}  // namespace
}  // namespace workload
}  // namespace mrm
