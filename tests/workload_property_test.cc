// Property tests for the inference engine: conservation laws and ordering
// invariants over randomized workloads and several model presets.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/workload/inference_engine.h"
#include "src/workload/request_generator.h"

namespace mrm {
namespace workload {
namespace {

TierSpec GenericTier() {
  TierSpec spec;
  spec.name = "tier";
  spec.read_bw_bytes_per_s = 4e12;
  spec.write_bw_bytes_per_s = 4e12;
  spec.read_pj_per_bit = 3.0;
  spec.write_pj_per_bit = 3.0;
  spec.static_power_w = 50.0;
  return spec;
}

struct ModelCase {
  std::string name;
  FoundationModelConfig (*make)();
};

class EnginePropertyTest : public ::testing::TestWithParam<ModelCase> {};

INSTANTIATE_TEST_SUITE_P(Models, EnginePropertyTest,
                         ::testing::Values(ModelCase{"phi3", &Phi3_14B},
                                           ModelCase{"llama70b", &Llama2_70B},
                                           ModelCase{"llama70b_mha", &Llama2_70B_MHA}),
                         [](const auto& param_info) { return param_info.param.name; });

EngineSummary RunRandomWorkload(const FoundationModelConfig& model, std::uint64_t seed,
                                int requests, TraceSink* trace = nullptr) {
  AnalyticBackend backend(GenericTier(), model.weight_bytes());
  EngineConfig config;
  config.model = model;
  config.max_batch = 8;
  config.compute_tflops = 500.0;
  InferenceEngine engine(config, &backend, trace);
  RequestGenerator generator(SplitwiseConversation(), 5.0, seed);
  std::vector<InferenceRequest> reqs;
  for (int i = 0; i < requests; ++i) {
    InferenceRequest request = generator.Next();
    request.arrival_s = 0.0;  // saturating: no idle gaps (roofline property)
    request.prompt_tokens = std::min(request.prompt_tokens, 2048);
    request.output_tokens = std::min(request.output_tokens, 64);
    reqs.push_back(request);
  }
  return engine.Run(reqs);
}

TEST_P(EnginePropertyTest, TokenConservation) {
  const FoundationModelConfig model = GetParam().make();
  RequestGenerator generator(SplitwiseConversation(), 5.0, 11);
  std::vector<InferenceRequest> reqs;
  std::uint64_t expected_prompt = 0;
  std::uint64_t expected_output = 0;
  for (int i = 0; i < 12; ++i) {
    InferenceRequest request = generator.Next();
    request.prompt_tokens = std::min(request.prompt_tokens, 2048);
    request.output_tokens = std::min(request.output_tokens, 64);
    expected_prompt += static_cast<std::uint64_t>(request.prompt_tokens);
    expected_output += static_cast<std::uint64_t>(request.output_tokens);
    reqs.push_back(request);
  }
  AnalyticBackend backend(GenericTier(), model.weight_bytes());
  EngineConfig config;
  config.model = model;
  config.max_batch = 8;
  config.compute_tflops = 500.0;
  InferenceEngine engine(config, &backend);
  const EngineSummary summary = engine.Run(reqs);
  EXPECT_EQ(summary.prefill_tokens, expected_prompt);
  EXPECT_EQ(summary.decode_tokens, expected_output);
  EXPECT_EQ(summary.requests_completed, 12u);
}

TEST_P(EnginePropertyTest, KvByteConservation) {
  const FoundationModelConfig model = GetParam().make();
  const EngineSummary summary = RunRandomWorkload(model, 13, 10);
  // Every prefilled and decoded token appends exactly one vector.
  EXPECT_EQ(summary.kv_write_bytes,
            model.kv_bytes_per_token() * (summary.prefill_tokens + summary.decode_tokens));
}

TEST_P(EnginePropertyTest, WeightReadsMatchSteps) {
  const FoundationModelConfig model = GetParam().make();
  const EngineSummary summary = RunRandomWorkload(model, 17, 10);
  EXPECT_EQ(summary.weight_read_bytes, summary.steps * model.weight_bytes());
}

TEST_P(EnginePropertyTest, DecodeLedgerSubsetOfTotal) {
  const FoundationModelConfig model = GetParam().make();
  const EngineSummary summary = RunRandomWorkload(model, 19, 10);
  EXPECT_LE(summary.decode_read_bytes, summary.total_read_bytes());
  EXPECT_LE(summary.decode_write_bytes, summary.total_write_bytes());
  EXPECT_GT(summary.decode_read_write_ratio(), summary.read_write_ratio());
}

TEST_P(EnginePropertyTest, StepTimeIsRooflineMax) {
  const FoundationModelConfig model = GetParam().make();
  const EngineSummary summary = RunRandomWorkload(model, 23, 8);
  // duration >= max(total memory, total compute) since each step takes the
  // max of its two components; and duration <= their sum.
  EXPECT_GE(summary.duration_s + 1e-9,
            std::max(summary.memory_seconds, summary.compute_seconds));
  EXPECT_LE(summary.duration_s,
            summary.memory_seconds + summary.compute_seconds + 1e-9);
}

TEST_P(EnginePropertyTest, LatencyOrdering) {
  const FoundationModelConfig model = GetParam().make();
  const EngineSummary summary = RunRandomWorkload(model, 29, 10);
  // Every request: TTFT <= E2E (histograms preserve this in aggregate).
  EXPECT_LE(summary.ttft_ms.min(), summary.e2e_latency_s.max() * 1e3 + 1e-6);
  EXPECT_EQ(summary.ttft_ms.count(), summary.e2e_latency_s.count());
}

TEST_P(EnginePropertyTest, DeterministicAcrossRuns) {
  const FoundationModelConfig model = GetParam().make();
  const EngineSummary a = RunRandomWorkload(model, 31, 10);
  const EngineSummary b = RunRandomWorkload(model, 31, 10);
  EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_DOUBLE_EQ(a.backend_energy_j, b.backend_energy_j);
}

TEST_P(EnginePropertyTest, TraceByteCountsMatchSummary) {
  const FoundationModelConfig model = GetParam().make();
  TraceSink sink;
  const EngineSummary summary = RunRandomWorkload(model, 37, 6, &sink);
  std::uint64_t traced_reads = 0;
  std::uint64_t traced_writes = 0;
  for (const auto& extent : sink.extents()) {
    (extent.is_write ? traced_writes : traced_reads) += extent.length;
  }
  EXPECT_EQ(traced_reads, summary.total_read_bytes());
  EXPECT_EQ(traced_writes, summary.total_write_bytes());
}

TEST_P(EnginePropertyTest, TighterKvCapacityNeverFaster) {
  const FoundationModelConfig model = GetParam().make();
  auto run_with_capacity = [&](std::uint64_t capacity) {
    AnalyticBackend backend(GenericTier(), model.weight_bytes());
    EngineConfig config;
    config.model = model;
    config.max_batch = 8;
    config.compute_tflops = 500.0;
    config.kv_capacity_bytes = capacity;
    InferenceEngine engine(config, &backend);
    RequestGenerator generator(SplitwiseConversation(), 5.0, 41);
    std::vector<InferenceRequest> reqs;
    for (int i = 0; i < 10; ++i) {
      InferenceRequest request = generator.Next();
      request.prompt_tokens = std::min(request.prompt_tokens, 1024);
      request.output_tokens = std::min(request.output_tokens, 64);
      reqs.push_back(request);
    }
    return engine.Run(reqs);
  };
  const EngineSummary roomy = run_with_capacity(0);
  const EngineSummary tight =
      run_with_capacity(model.kv_bytes_per_token() * 1100 * 2);  // ~2 requests
  EXPECT_GE(tight.duration_s, roomy.duration_s * 0.999);
  EXPECT_LE(tight.mean_batch, roomy.mean_batch + 1e-9);
}

}  // namespace
}  // namespace workload
}  // namespace mrm
