#include "src/workload/request_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace mrm {
namespace workload {
namespace {

TEST(TokenDistribution, RespectsBounds) {
  TokenDistribution dist{.median = 100, .sigma = 2.0, .min_tokens = 10, .max_tokens = 500};
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const int tokens = dist.Sample(rng);
    EXPECT_GE(tokens, 10);
    EXPECT_LE(tokens, 500);
  }
}

TEST(TokenDistribution, MedianApproximatelyCorrect) {
  TokenDistribution dist{.median = 1000, .sigma = 1.0, .min_tokens = 1, .max_tokens = 1 << 20};
  Rng rng(2);
  std::vector<int> samples;
  for (int i = 0; i < 20001; ++i) {
    samples.push_back(dist.Sample(rng));
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 1000, 60);
}

TEST(RequestGenerator, ArrivalsAreMonotone) {
  RequestGenerator generator(SplitwiseConversation(), 10.0, 3);
  double previous = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const InferenceRequest request = generator.Next();
    EXPECT_GT(request.arrival_s, previous);
    previous = request.arrival_s;
  }
}

TEST(RequestGenerator, IdsAreSequential) {
  RequestGenerator generator(SplitwiseConversation(), 10.0, 4);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    EXPECT_EQ(generator.Next().id, i);
  }
}

TEST(RequestGenerator, ArrivalRateApproximatesLambda) {
  RequestGenerator generator(SplitwiseConversation(), 50.0, 5);
  const auto requests = generator.GenerateFor(100.0);
  EXPECT_NEAR(static_cast<double>(requests.size()), 5000.0, 300.0);
}

TEST(RequestGenerator, GenerateForRespectsHorizon) {
  RequestGenerator generator(SplitwiseCoding(), 5.0, 6);
  const auto requests = generator.GenerateFor(10.0);
  for (const auto& request : requests) {
    EXPECT_LT(request.arrival_s, 10.0);
  }
}

TEST(RequestGenerator, DeterministicAcrossRuns) {
  RequestGenerator a(SplitwiseConversation(), 10.0, 42);
  RequestGenerator b(SplitwiseConversation(), 10.0, 42);
  for (int i = 0; i < 100; ++i) {
    const InferenceRequest ra = a.Next();
    const InferenceRequest rb = b.Next();
    EXPECT_EQ(ra.arrival_s, rb.arrival_s);
    EXPECT_EQ(ra.prompt_tokens, rb.prompt_tokens);
    EXPECT_EQ(ra.output_tokens, rb.output_tokens);
  }
}

TEST(Profiles, ConversationMatchesSplitwiseMedians) {
  const WorkloadProfile profile = SplitwiseConversation();
  EXPECT_EQ(profile.prompt.median, 1020);
  EXPECT_EQ(profile.output.median, 129);
}

TEST(Profiles, CodingIsPromptHeavy) {
  const WorkloadProfile profile = SplitwiseCoding();
  EXPECT_GT(profile.prompt.median, SplitwiseConversation().prompt.median);
  EXPECT_LT(profile.output.median, SplitwiseConversation().output.median);
}

TEST(Profiles, LongContextStressesKv) {
  const WorkloadProfile profile = LongContextSummarization();
  EXPECT_GE(profile.prompt.median, 8000);
}

TEST(Profiles, TokensArePositive) {
  Rng rng(9);
  for (const auto& profile :
       {SplitwiseConversation(), SplitwiseCoding(), LongContextSummarization()}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_GT(profile.prompt.Sample(rng), 0);
      EXPECT_GT(profile.output.Sample(rng), 0);
    }
  }
}

}  // namespace
}  // namespace workload
}  // namespace mrm
