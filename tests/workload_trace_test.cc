#include "src/workload/trace.h"

#include <gtest/gtest.h>

namespace mrm {
namespace workload {
namespace {

TraceExtent Read(Stream stream, std::uint64_t key, std::uint64_t offset, std::uint64_t length,
                 std::uint64_t step = 0) {
  return TraceExtent{stream, key, false, offset, length, step};
}

TraceExtent Write(Stream stream, std::uint64_t key, std::uint64_t offset, std::uint64_t length,
                  std::uint64_t step = 0) {
  return TraceExtent{stream, key, true, offset, length, step};
}

TEST(Trace, EmptyTraceAnalyzes) {
  const PredictabilityReport report = AnalyzeTrace({});
  EXPECT_EQ(report.read_bytes, 0u);
  EXPECT_EQ(report.write_bytes, 0u);
  EXPECT_EQ(report.step_order_stability, 1.0);
}

TEST(Trace, SinkRecordsAndClears) {
  TraceSink sink;
  sink.Record(Read(Stream::kWeights, 0, 0, 64));
  EXPECT_EQ(sink.extents().size(), 1u);
  sink.Clear();
  EXPECT_TRUE(sink.extents().empty());
}

TEST(Trace, PureSequentialReadsAreFullySequential) {
  std::vector<TraceExtent> extents;
  for (int i = 0; i < 10; ++i) {
    extents.push_back(Read(Stream::kWeights, 0, static_cast<std::uint64_t>(i) * 100, 100));
  }
  const PredictabilityReport report = AnalyzeTrace(extents);
  // Only the first extent's first access granule (64 B of 1000 B) is a jump.
  EXPECT_NEAR(report.read_sequential_fraction, 1.0 - 64.0 / 1000.0, 1e-9);
}

TEST(Trace, RandomReadsAreNotSequential) {
  std::vector<TraceExtent> extents;
  for (int i = 0; i < 10; ++i) {
    extents.push_back(Read(Stream::kWeights, 0, static_cast<std::uint64_t>((i * 7) % 10) * 1000,
                           100));
  }
  const PredictabilityReport report = AnalyzeTrace(extents);
  // Every 100 B extent jumps: only the 36 B tail of each streams.
  EXPECT_LT(report.read_sequential_fraction, 0.5);
}

TEST(Trace, AppendOnlyWritesDetected) {
  std::vector<TraceExtent> extents;
  for (int i = 0; i < 8; ++i) {
    extents.push_back(Write(Stream::kKvCache, 1, static_cast<std::uint64_t>(i) * 64, 64));
  }
  const PredictabilityReport report = AnalyzeTrace(extents);
  EXPECT_DOUBLE_EQ(report.write_append_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.overwrite_fraction, 0.0);
}

TEST(Trace, OverwritesDetected) {
  std::vector<TraceExtent> extents;
  extents.push_back(Write(Stream::kActivations, 0, 0, 100));
  extents.push_back(Write(Stream::kActivations, 0, 0, 100));  // overwrite
  const PredictabilityReport report = AnalyzeTrace(extents);
  EXPECT_DOUBLE_EQ(report.write_append_fraction, 0.5);
  EXPECT_DOUBLE_EQ(report.overwrite_fraction, 0.5);
}

TEST(Trace, StreamsAnalyzedIndependently) {
  // Interleaved sequential streams stay sequential per (stream, key).
  std::vector<TraceExtent> extents;
  for (int i = 0; i < 5; ++i) {
    extents.push_back(Read(Stream::kKvCache, 1, static_cast<std::uint64_t>(i) * 10, 10));
    extents.push_back(Read(Stream::kKvCache, 2, static_cast<std::uint64_t>(i) * 10, 10));
  }
  const PredictabilityReport report = AnalyzeTrace(extents);
  EXPECT_GT(report.read_sequential_fraction, 0.3);
}

TEST(Trace, StableStepOrderDetected) {
  std::vector<TraceExtent> extents;
  for (std::uint64_t step = 0; step < 4; ++step) {
    extents.push_back(Read(Stream::kWeights, 0, 0, 8 * 1024 * 1024, step));
  }
  const PredictabilityReport report = AnalyzeTrace(extents, 2 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(report.step_order_stability, 1.0);
}

TEST(Trace, UnstableStepOrderDetected) {
  std::vector<TraceExtent> extents;
  // Step 0 reads pages [0..4); step 1 reads a different span.
  extents.push_back(Read(Stream::kWeights, 0, 0, 8 * 1024 * 1024, 0));
  extents.push_back(Read(Stream::kWeights, 0, 32 * 1024 * 1024, 8 * 1024 * 1024, 1));
  const PredictabilityReport report = AnalyzeTrace(extents, 2 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(report.step_order_stability, 0.0);
}

TEST(Trace, ByteCountsAccumulate) {
  std::vector<TraceExtent> extents;
  extents.push_back(Read(Stream::kWeights, 0, 0, 1000));
  extents.push_back(Write(Stream::kKvCache, 0, 0, 200));
  extents.push_back(Read(Stream::kKvCache, 0, 0, 300));
  const PredictabilityReport report = AnalyzeTrace(extents);
  EXPECT_EQ(report.read_bytes, 1300u);
  EXPECT_EQ(report.write_bytes, 200u);
}

TEST(Trace, StreamNames) {
  EXPECT_STREQ(StreamName(Stream::kWeights), "weights");
  EXPECT_STREQ(StreamName(Stream::kKvCache), "kv-cache");
  EXPECT_STREQ(StreamName(Stream::kActivations), "activations");
  EXPECT_STREQ(StreamName(Stream::kNone), "none");
}

}  // namespace
}  // namespace workload
}  // namespace mrm
