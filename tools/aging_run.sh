#!/usr/bin/env bash
# Kill-and-resume proof for durable checkpoints (DESIGN.md §13).
#
# Runs the aging campaign three ways and proves the crash-safety claim:
#   1. an unkilled reference run writing BENCH_aging_campaign.json;
#   2. the same campaign SIGKILLed mid-segment (--die-at-day, no cleanup,
#      exit 137), leaving only the durable checkpoints behind;
#   3. a bare re-invocation that must auto-resume from the newest checkpoint
#      and finish.
# The resumed run's JSON must be bit-identical to the reference's except for
# wall-clock fields (wall seconds, events/sec, thread counts).
#
# Usage: tools/aging_run.sh [build-dir] [days] [checkpoint-every] [die-at-day]
# Defaults: build 90 5 47 — ninety simulated days of the F2 fault ladder,
# checkpoints every 5 days, killed mid-segment at day 47 (a day with no
# checkpoint of its own, so the resume replays days 46-47 from day 45's).

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
DAYS="${2:-90}"
EVERY="${3:-5}"
DIE_AT="${4:-47}"
BENCH="./$BUILD_DIR/bench/bench_aging_campaign"

if [[ ! -x "$BENCH" ]]; then
  echo "aging_run: $BENCH not built (cmake --build $BUILD_DIR --target bench_aging_campaign)" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/aging_run.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
mkdir -p "$WORK/ref" "$WORK/crash"

echo "aging_run: reference run ($DAYS days, checkpoint every $EVERY)"
(cd "$WORK/ref" && MRMSIM_BENCH_OUT=. "$OLDPWD/$BUILD_DIR/bench/bench_aging_campaign" \
  --days="$DAYS" --checkpoint-every="$EVERY" --checkpoint-dir=.)

echo "aging_run: crash run (SIGKILL after day $DIE_AT)"
set +e
(cd "$WORK/crash" && MRMSIM_BENCH_OUT=. "$OLDPWD/$BUILD_DIR/bench/bench_aging_campaign" \
  --days="$DAYS" --checkpoint-every="$EVERY" --checkpoint-dir=. --die-at-day="$DIE_AT")
STATUS=$?
set -e
if [[ "$STATUS" -ne 137 ]]; then
  echo "aging_run: FAIL — crash run exited $STATUS, expected 137 (SIGKILL)" >&2
  exit 1
fi
if [[ -e "$WORK/crash/BENCH_aging_campaign.json" ]]; then
  echo "aging_run: FAIL — killed run left a JSON report behind" >&2
  exit 1
fi

echo "aging_run: resume run"
(cd "$WORK/crash" && MRMSIM_BENCH_OUT=. "$OLDPWD/$BUILD_DIR/bench/bench_aging_campaign" \
  --days="$DAYS" --checkpoint-every="$EVERY" --checkpoint-dir=.)

# Wall-clock fields are the only permitted difference.
if ! diff <(grep -v 'wall_seconds\|events_per_sec\|threads' "$WORK/ref/BENCH_aging_campaign.json") \
          <(grep -v 'wall_seconds\|events_per_sec\|threads' "$WORK/crash/BENCH_aging_campaign.json"); then
  echo "aging_run: FAIL — resumed campaign diverged from the unkilled reference" >&2
  exit 1
fi
echo "aging_run: PASS — killed+resumed campaign is bit-identical to the reference"
