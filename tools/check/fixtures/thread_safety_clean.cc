// Positive fixture for tools/check/thread_safety_negative.sh: the same
// hub/lane shape as the violation fixtures, with the claims the ownership
// protocol (DESIGN.md §12) actually requires. Must compile cleanly under
// clang -DMRMSIM_THREAD_SAFETY -Werror=thread-safety.

#include <cstdint>

#include "src/common/thread_annotations.h"

namespace {

struct Lane {
  mrm::tsa::ThreadRole role;
  std::uint64_t clock MRMSIM_LANE_OWNED(role) = 0;
};

class System {
 public:
  // Lane context: the epoch worker owns exactly this lane.
  void RunLane(Lane& lane) {
    lane.role.Held();
    lane.clock += 1;
  }

  // Hub context: the serial executive owns the cross-lane state, and while
  // the lanes are parked it may claim each lane's role too.
  void Seal(Lane& lane) {
    mrm::tsa::hub_role.Held();
    lane.role.Held();
    routed_ += lane.clock;
  }

  std::uint64_t routed() const {
    mrm::tsa::hub_role.HeldShared();
    return routed_;
  }

 private:
  std::uint64_t routed_ MRMSIM_HUB_SHARED = 0;
};

}  // namespace

int main() {
  Lane lane;
  System system;
  system.RunLane(lane);
  system.Seal(lane);
  return static_cast<int>(system.routed() & 1);
}
