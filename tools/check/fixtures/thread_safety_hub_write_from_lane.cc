// Negative fixture for tools/check/thread_safety_negative.sh: a lane-context
// function writes hub-shared state. This is the aliasing bug class the role
// annotations exist to reject — a lane mutating cross-lane state mid-epoch
// silently breaks bit-identical replay. Expected to FAIL compilation under
// clang -DMRMSIM_THREAD_SAFETY -Werror=thread-safety with a thread-safety
// diagnostic; if it ever compiles, the analysis has lost its teeth.

#include <cstdint>

#include "src/common/thread_annotations.h"

namespace {

struct Lane {
  mrm::tsa::ThreadRole role;
  std::uint64_t clock MRMSIM_LANE_OWNED(role) = 0;
};

class System {
 public:
  void RunLane(Lane& lane) {
    lane.role.Held();  // lane context: holds its own lane, never hub_role
    lane.clock += 1;
    routed_ += lane.clock;  // BUG: hub-shared write from lane code
  }

 private:
  std::uint64_t routed_ MRMSIM_HUB_SHARED = 0;
};

}  // namespace

int main() {
  Lane lane;
  System system;
  system.RunLane(lane);
  return 0;
}
