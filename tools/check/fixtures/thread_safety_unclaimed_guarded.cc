// Negative fixture for tools/check/thread_safety_negative.sh: a function
// with no context claim at all touches a GUARDED_BY member — the shape a
// new helper takes when someone forgets to state which context it runs in.
// Expected to FAIL compilation under clang -DMRMSIM_THREAD_SAFETY
// -Werror=thread-safety with a thread-safety diagnostic.

#include <cstdint>

#include "src/common/thread_annotations.h"

namespace {

struct Lane {
  mrm::tsa::ThreadRole role;
  std::uint64_t clock MRMSIM_LANE_OWNED(role) = 0;
};

std::uint64_t PeekClock(const Lane& lane) {
  return lane.clock;  // BUG: no Held()/HeldShared() claim on lane.role
}

}  // namespace

int main() {
  Lane lane;
  return static_cast<int>(PeekClock(lane) & 1);
}
