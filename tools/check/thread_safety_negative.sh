#!/usr/bin/env bash
# Negative-compile test for the thread-safety annotation layer
# (src/common/thread_annotations.h, DESIGN.md §12).
#
# Proves the analysis has teeth, not just that the build is green: the clean
# fixture must compile under clang -Werror=thread-safety, and each violation
# fixture (a hub-shared write from lane code; an unclaimed read of a guarded
# member) must be REJECTED with a thread-safety diagnostic. A vacuously
# passing analysis — macros expanding to nothing, a capability that never
# guards — fails this script even though the main build stays green.
#
# Requires clang; exits 77 (the ctest/automake skip code) when no clang is
# installed, so local gcc-only containers skip it while the CI clang job
# enforces it.
#
# Usage: tools/check/thread_safety_negative.sh [clang++ binary]
# Exit: 0 pass, 1 fail, 77 skipped (no clang).

set -u

cd "$(dirname "$0")/../.."
FIXTURES=tools/check/fixtures

CLANG="${1:-}"
if [[ -z "$CLANG" ]]; then
  for candidate in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                   clang++-17 clang++-16 clang++-15 clang++-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
      CLANG="$candidate"
      break
    fi
  done
fi
if [[ -z "$CLANG" ]] || ! command -v "$CLANG" > /dev/null 2>&1; then
  echo "thread-safety-negative: SKIP (no clang++ found; the annotations are" \
       "clang-only and gcc builds compile them away)"
  exit 77
fi

FLAGS=(-std=c++20 -fsyntax-only -I. -DMRMSIM_THREAD_SAFETY
       -Wthread-safety -Werror=thread-safety)

fail=0

# 1. The clean fixture models the protocol correctly and must compile.
if ! out=$("$CLANG" "${FLAGS[@]}" "$FIXTURES/thread_safety_clean.cc" 2>&1); then
  echo "FAIL: clean fixture rejected under -Werror=thread-safety:"
  echo "$out"
  fail=1
else
  echo "ok: clean fixture accepted"
fi

# 2. Each violation fixture must be rejected, and rejected for the right
#    reason: the diagnostic must come from the thread-safety analysis, not
#    from an unrelated compile error masking a vacuous pass.
for fixture in thread_safety_hub_write_from_lane thread_safety_unclaimed_guarded; do
  if out=$("$CLANG" "${FLAGS[@]}" "$FIXTURES/$fixture.cc" 2>&1); then
    echo "FAIL: $fixture.cc compiled — the planted violation was not caught"
    fail=1
  elif ! grep -q "thread-safety" <<< "$out"; then
    echo "FAIL: $fixture.cc was rejected, but not by the thread-safety analysis:"
    echo "$out"
    fail=1
  else
    echo "ok: $fixture.cc rejected with a thread-safety diagnostic"
  fi
done

if [[ $fail -eq 0 ]]; then
  echo "thread-safety-negative: PASS"
fi
exit $fail
