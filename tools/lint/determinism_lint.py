#!/usr/bin/env python3
"""Determinism lint for the simulator core (DESIGN.md §9).

The simulator's contract is bit-identical statistics for a given seed at any
thread count. This lint statically forbids the constructs that silently break
that contract in the deterministic core (src/sim, src/mem, src/mrm, src/fault):

  call-rand          libc randomness: rand(), srand(), random(), drand48(), …
                     (seeded std::mt19937 etc. are fine — they are explicit
                     and reproducible).
  random-device      std::random_device — nondeterministic by definition.
  wall-clock         wall-clock time as an input: time(), clock(),
                     gettimeofday(), std::chrono ...::now(). Simulation time
                     must come from the simulator's tick clock.
  unordered-iter     iterating a std::unordered_{map,set}: iteration order is
                     implementation- and address-dependent, so anything
                     ordered or accumulated from it (stats, scheduling)
                     varies run to run. Lookups are fine; iterate a sorted
                     copy or keep a side vector instead.
  pointer-key        std::map/std::set ordered by a pointer key: the order is
                     the allocator's address order, which varies run to run
                     (ASLR), so iteration feeds nondeterminism downstream.
  float-reduce       std::reduce / std::transform_reduce (explicitly
                     unsequenced), or std::accumulate with a floating-point
                     initial value: float addition is not associative, so the
                     accumulation order changes the result bit-for-bit. Use a
                     sequential loop in a fixed order.
  unseeded-hash      std::hash<...>: the hash is unspecified, differs across
                     standard libraries, and may be salted per process.
                     Derive a keyed SplitMix64 mix instead (src/common/rng.h)
                     so hashed values replay identically everywhere.

A finding can be suppressed by putting
`determinism-lint: allow(<rule>) -- <reason>` in a comment on the same line.
The reason is mandatory: an allow() without one is itself a finding
(allow-no-reason), so every escape in the tree documents why it is safe.

Usage:
  determinism_lint.py [--root DIR] [PATH...]   # default paths: the core dirs
  determinism_lint.py --self-test              # verify the lint catches a
                                               # planted rand() in a fixture
Exit status: 0 clean, 1 findings, 2 usage/setup error.
"""

import argparse
import os
import re
import sys
import tempfile

CORE_DIRS = ("src/sim", "src/mem", "src/mrm", "src/fault", "src/workload", "src/tier",
             "src/driver", "src/cluster", "src/analysis", "src/policy")
CXX_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")

# allow(<rule>) plus a mandatory trailing justification (after `--`, `-`, or
# `:`). Group 2 is None when the justification is missing.
ALLOW_RE = re.compile(r"determinism-lint:\s*allow\(([a-z-]+)\)\s*(?:(?:--|[-:])\s*(\S.*))?")

# (rule, regex, message). Patterns run against code with string/char literals
# blanked and comments removed, so `"rand()"` in a message never trips them.
PATTERN_RULES = [
    (
        "call-rand",
        re.compile(r"(?<![\w.:>])(?:std\s*::\s*)?(?:s?rand|random|[dlm]rand48)\s*\("),
        "libc randomness is not reproducible across platforms; use a seeded "
        "generator (src/common/rng.h)",
    ),
    (
        "random-device",
        re.compile(r"std\s*::\s*random_device"),
        "std::random_device is nondeterministic; seed explicitly",
    ),
    (
        "wall-clock",
        re.compile(
            r"(?<![\w.:>])(?:std\s*::\s*)?(?:time|clock|gettimeofday|clock_gettime)\s*\("
            r"|std\s*::\s*chrono\s*::\s*\w+_clock\s*::\s*now"
        ),
        "wall-clock time is nondeterministic input; use the simulator tick clock",
    ),
    (
        "pointer-key",
        re.compile(r"std\s*::\s*(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:<>\s]*\*\s*[,>]"),
        "ordered container keyed by pointer iterates in address order, which "
        "varies run to run; key by a stable id",
    ),
    (
        "float-reduce",
        re.compile(
            r"std\s*::\s*(?:reduce|transform_reduce)\s*\("
            r"|std\s*::\s*accumulate\s*\([^;]*?,\s*"
            r"(?:[0-9]+\.[0-9]*f?|\.[0-9]+f?|[0-9]+\.?[0-9]*[fF]\b"
            r"|(?:static_cast\s*<\s*)?(?:float|double)\b)"
        ),
        "unordered/float reduction: float addition is not associative, so "
        "accumulation order changes the result bit-for-bit; use a sequential "
        "loop in a fixed order",
    ),
    (
        "unseeded-hash",
        re.compile(r"std\s*::\s*hash\s*<"),
        "std::hash is unspecified across standard libraries and may be salted "
        "per process; derive a keyed SplitMix64 mix instead (src/common/rng.h)",
    ),
]

UNORDERED_DECL_RE = re.compile(
    r"(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<[^;=]*?>\s+(\w+)\s*[;={(]"
)
RANGE_FOR_RE = re.compile(r"for\s*\([^;)]*?:\s*(?:\*?\s*)?([A-Za-z_]\w*)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")


def strip_literals(line):
    """Blanks out string/char literal contents so patterns don't match them."""
    out = []
    quote = None
    i = 0
    while i < len(line):
        ch = line[i]
        if quote:
            if ch == "\\":
                out.append("..")
                i += 2
                continue
            if ch == quote:
                quote = None
                out.append(ch)
            else:
                out.append(".")
        else:
            if ch in "\"'":
                quote = ch
            out.append(ch)
        i += 1
    return "".join(out)


def split_code_comment(line):
    """Returns (code, comment) for a line; block comments are handled by the
    caller via the in_block flag, this only strips // and same-line /* */."""
    code = strip_literals(line)
    comment = ""
    slash = code.find("//")
    if slash >= 0:
        comment = line[slash:]
        code = code[:slash]
    # Same-line /* ... */ chunks.
    code = re.sub(r"/\*.*?\*/", " ", code)
    return code, comment


class Finding:
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def lint_file(path, display_path=None):
    display_path = display_path or path
    findings = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
    except OSError as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)

    # Pass 1: names declared as unordered containers in this file.
    unordered_names = set()
    in_block = False
    for raw in lines:
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block = False
        code, _ = split_code_comment(line)
        if "/*" in code:
            code = code[: code.index("/*")]
            in_block = True
        for match in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(match.group(1))

    # Pass 2: findings.
    in_block = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block = False
        code, comment = split_code_comment(line)
        if "/*" in code:
            code = code[: code.index("/*")]
            in_block = True
        allowed = set()
        for allow in ALLOW_RE.finditer(raw):
            allowed.add(allow.group(1))
            if allow.group(2) is None:
                findings.append(
                    Finding(
                        display_path,
                        lineno,
                        "allow-no-reason",
                        f"allow({allow.group(1)}) without a justification; "
                        "write `allow(rule) -- <why this is deterministic>`",
                    )
                )

        for rule, pattern, message in PATTERN_RULES:
            if rule in allowed:
                continue
            if pattern.search(code):
                findings.append(Finding(display_path, lineno, rule, message))

        if "unordered-iter" not in allowed and unordered_names:
            names = set(RANGE_FOR_RE.findall(code)) | set(BEGIN_CALL_RE.findall(code))
            for name in sorted(names & unordered_names):
                findings.append(
                    Finding(
                        display_path,
                        lineno,
                        "unordered-iter",
                        f"iterating unordered container '{name}': iteration "
                        "order is address-dependent and varies run to run",
                    )
                )
    return findings


def collect_files(root, paths):
    files = []
    for path in paths:
        full = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(full):
            files.append((full, os.path.relpath(full, root)))
        elif os.path.isdir(full):
            for dirpath, _, names in os.walk(full):
                for name in sorted(names):
                    if name.endswith(CXX_SUFFIXES):
                        f = os.path.join(dirpath, name)
                        files.append((f, os.path.relpath(f, root)))
        else:
            print(f"error: no such path: {full}", file=sys.stderr)
            sys.exit(2)
    files.sort(key=lambda pair: pair[1])
    return files


def run_lint(root, paths):
    findings = []
    files = collect_files(root, paths)
    for full, rel in files:
        findings.extend(lint_file(full, rel))
    for finding in findings:
        print(finding)
    print(
        f"determinism-lint: {len(files)} files, {len(findings)} finding"
        f"{'' if len(findings) == 1 else 's'}"
    )
    return 1 if findings else 0


SELF_TEST_BAD = """\
#include <cstdlib>
#include <ctime>
#include <functional>
#include <map>
#include <numeric>
#include <random>
#include <unordered_map>
#include <vector>

int Roll() { return rand() % 6; }                      // call-rand
long Now() { return time(nullptr); }                   // wall-clock
int Seed() { std::random_device rd; return rd(); }     // random-device
std::map<int*, int> by_address;                        // pointer-key
std::unordered_map<int, int> counts;
int Sum() {
  int total = 0;
  for (const auto& entry : counts) {                   // unordered-iter
    total += entry.second;
  }
  return total;
}
double Mean(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);     // float-reduce
}
double Par(const std::vector<double>& v) {
  return std::reduce(v.begin(), v.end());              // float-reduce
}
std::size_t Key(int channel) {
  return std::hash<int>{}(channel);                    // unseeded-hash
}
"""

SELF_TEST_CLEAN = """\
#include <numeric>
#include <unordered_map>
#include <vector>

// A comment saying rand() or time() must not trip the lint.
const char* kLabel = "rand() inside a string literal";
std::unordered_map<int, int> lookup_only;
int Get(int key) { return lookup_only.at(key); }
std::uint64_t Mix(std::uint64_t x) { return x * 6364136223846793005ull + 1442695040888963407ull; }
// Integer accumulation is associative: order cannot change the result.
std::uint64_t Total(const std::vector<std::uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
}
"""

SELF_TEST_SUPPRESSED = """\
#include <unordered_map>
std::unordered_map<int, int> table;
int CountAll() {
  int n = 0;
  for (const auto& kv : table) {  // determinism-lint: allow(unordered-iter) -- count is order-free
    n += kv.second;
  }
  return n;
}
"""

SELF_TEST_ALLOW_NO_REASON = """\
#include <unordered_map>
std::unordered_map<int, int> table;
int CountAll() {
  int n = 0;
  for (const auto& kv : table) {  // determinism-lint: allow(unordered-iter)
    n += kv.second;
  }
  return n;
}
"""


def self_test():
    expected_bad = {"call-rand", "wall-clock", "random-device", "pointer-key", "unordered-iter",
                    "float-reduce", "unseeded-hash"}
    with tempfile.TemporaryDirectory(prefix="determinism_lint_") as tmp:
        bad = os.path.join(tmp, "bad.cc")
        clean = os.path.join(tmp, "clean.cc")
        suppressed = os.path.join(tmp, "suppressed.cc")
        no_reason = os.path.join(tmp, "no_reason.cc")
        for path, content in ((bad, SELF_TEST_BAD), (clean, SELF_TEST_CLEAN),
                              (suppressed, SELF_TEST_SUPPRESSED),
                              (no_reason, SELF_TEST_ALLOW_NO_REASON)):
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)

        bad_findings = lint_file(bad)
        bad_rules = {f.rule for f in bad_findings}
        clean_findings = lint_file(clean)
        suppressed_findings = lint_file(suppressed)
        no_reason_rules = {f.rule for f in lint_file(no_reason)}

        ok = True
        missing = expected_bad - bad_rules
        if missing:
            print(f"self-test FAIL: planted violations not caught: {sorted(missing)}")
            ok = False
        if clean_findings:
            print("self-test FAIL: false positives on the clean fixture:")
            for f in clean_findings:
                print(f"  {f}")
            ok = False
        if suppressed_findings:
            print("self-test FAIL: allow() suppression not honored:")
            for f in suppressed_findings:
                print(f"  {f}")
            ok = False
        if no_reason_rules != {"allow-no-reason"}:
            print(
                "self-test FAIL: allow() without a reason should yield exactly "
                f"allow-no-reason (still suppressing its rule), got {sorted(no_reason_rules)}"
            )
            ok = False
        if ok:
            print(
                f"self-test OK: caught {sorted(bad_rules)} on the planted fixture, "
                "no false positives, suppression honored, reasonless allow() flagged"
            )
        return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help=f"files/dirs to lint (default: {CORE_DIRS})")
    parser.add_argument("--root", default=None, help="repo root (default: two dirs up)")
    parser.add_argument("--self-test", action="store_true",
                        help="plant violations in a scratch fixture and verify they are caught")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths or list(CORE_DIRS)
    sys.exit(run_lint(root, paths))


if __name__ == "__main__":
    main()
