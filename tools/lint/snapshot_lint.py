#!/usr/bin/env python3
"""Snapshot-coverage lint for checkpointable classes (DESIGN.md §12, §13).

Any class exposing the SaveState/RestoreState pair (sim::Simulator,
sim::EventQueue, sim::PeriodicTask, mem::ChannelController, mem::Bank,
mem::MemorySystem, mrmcore::MrmDevice, mrmcore::ControlPlane,
fault::FaultInjector, and whatever grows one next) participates in
deterministic checkpoint/rollback — both the in-memory kind (a lane that
speculates past the commit horizon must restore bit-identically) and the
durable kind (src/snapshot serializes the same state to disk and a
multi-month aging campaign resumes from it after SIGKILL). A data member
silently left out of the snapshot is the failure mode this lint exists for —
the rollback or resume "works" and the stats drift.

Rule: every non-static data member of such a class must either

  * be mentioned (as a word) in the class's SaveState or RestoreState body —
    inline in the header or in a scanned .cc as Class::SaveState — or
  * carry an explicit `// snapshot-exempt(<reason>)` marker, trailing the
    declaration or on the comment line(s) immediately above it.

Additionally, a Save/Restore body that walks snapshot container sections by
hand must validate checksums: it must mention Crc or route the payload
through SnapshotReader/SnapshotWriter (whose Open verifies every section CRC
before handing out bytes). A RestoreState that forgets the CRC check would
accept a torn or bit-flipped file as good state.

Findings:
  snapshot-missing        member neither captured nor exempted
  snapshot-exempt-reason  snapshot-exempt() marker with an empty reason
  snapshot-unpaired       class declares only one of SaveState/RestoreState
  snapshot-no-body        pair declared but neither body was found in the
                          scanned file set (move the definition or widen the
                          scanned paths)
  snapshot-crc            Save/Restore body handles container sections with
                          no checksum validation in sight

Engine: tries the python libclang bindings when importable (exact AST
fields); otherwise — always, in this repo's container and CI — falls back to
a textual scanner. The textual scanner tracks brace depth, attributes
statements to the innermost class, and recognizes data members by the
trailing-underscore naming convention the codebase uses throughout; members
of nested structs and function-local code are excluded by depth. MRMSIM_*
thread-safety macros on declarations are stripped before matching.

Usage:
  snapshot_lint.py [--root DIR] [PATH...]   # default paths: src
  snapshot_lint.py --self-test              # plant an unsaved member &c. in
                                            # fixtures, verify the rules fire
Exit status: 0 clean, 1 findings, 2 usage/setup error.
"""

import argparse
import os
import re
import sys
import tempfile

DEFAULT_DIRS = ("src",)
HEADER_SUFFIXES = (".h", ".hpp")
SOURCE_SUFFIXES = (".cc", ".cpp")

EXEMPT_RE = re.compile(r"snapshot-exempt\(\s*([^)]*)")
MACRO_RE = re.compile(r"MRMSIM_\w+(?:\([^()]*(?:\([^()]*\)[^()]*)*\))?")
SAVE_FN_RE = re.compile(r"\b(SaveState|RestoreState)\s*\(")
CC_DEF_RE = re.compile(r"\bvoid\s+([A-Za-z_]\w*)\s*::\s*(SaveState|RestoreState)\s*\(")
CLASS_HEAD_RE = re.compile(
    r"(?:^|\s)(?:class|struct)\s+(?:MRMSIM_\w+\([^)]*\)\s+)?([A-Za-z_]\w*)\s*(?:final\s*)?(?::|$)"
)
MEMBER_NAME_RE = re.compile(
    r"([A-Za-z_]\w*_)\s*(?:=[^;]*|\{\}\s*|\[[^\]]*\]\s*)?$"
)
ACCESS_RE = re.compile(r"\s*(?:public|private|protected)\s*:")
# Hand-rolled section handling vs. evidence of checksum validation. Plain
# substrings on purpose: AppendSection/FindSection/section_offset must all
# count as section handling, and Crc32/crc_/VerifyCrc as validation.
SECTION_RE = re.compile(r"[Ss]ection")
CRC_OK_RE = re.compile(r"[Cc]rc|SnapshotReader|SnapshotWriter")
STMT_SKIP_WORDS = {
    "static", "using", "typedef", "friend", "template", "class", "struct",
    "enum", "union", "namespace", "return", "case", "goto", "public",
    "private", "protected", "operator", "explicit", "virtual",
}


def strip_literals(line):
    """Blanks out string/char literal contents so braces in them don't count."""
    out = []
    quote = None
    i = 0
    while i < len(line):
        ch = line[i]
        if quote:
            if ch == "\\":
                out.append("..")
                i += 2
                continue
            if ch == quote:
                quote = None
                out.append(ch)
            else:
                out.append(".")
        else:
            if ch in "\"'":
                quote = ch
            out.append(ch)
        i += 1
    return "".join(out)


def split_lines(text):
    """Per raw line: (code with comments/literals stripped, comment text)."""
    rows = []
    in_block = False
    for raw in text.splitlines():
        line = raw
        comment = ""
        if in_block:
            end = line.find("*/")
            if end < 0:
                rows.append(("", line))
                continue
            comment = line[: end + 2]
            line = line[end + 2:]
            in_block = False
        code = strip_literals(line)
        slash = code.find("//")
        if slash >= 0:
            comment += code[slash:]
            code = code[:slash]
        code = re.sub(r"/\*.*?\*/", " ", code)
        start = code.find("/*")
        if start >= 0:
            comment += code[start:]
            code = code[:start]
            in_block = True
        rows.append((code, comment))
    return rows


class ClassInfo:
    def __init__(self, name, path):
        self.name = name
        self.path = path
        # member name -> (lineno, exempt_reason or None, has_exempt_marker)
        self.members = []
        self.declares = set()      # subset of {SaveState, RestoreState}
        self.body_lines = set()    # linenos of inline Save/Restore bodies


class Scope:
    def __init__(self, kind, body_depth, cls=None, saved_pending=""):
        self.kind = kind  # "class" | "other"
        self.body_depth = body_depth
        self.cls = cls
        self.saved_pending = saved_pending


def parse_header(path, display_path):
    """Textual scan of one header: classes, their members, inline bodies."""
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    rows = split_lines(text)
    raw_lines = text.splitlines()

    classes = []
    scopes = []
    depth = 0
    pending = ""
    stmt_start = None
    awaiting_semi = False  # just popped a brace scope: `;` continues, else reset
    capture = None         # (ClassInfo, scope) while inside an inline body

    def innermost_class():
        for scope in reversed(scopes):
            if scope.kind == "class":
                return scope
            return None  # a non-class scope shadows the class for members
        return None

    def finalize(stmt, lineno):
        stmt = stmt.strip()
        if not stmt:
            return
        scope = innermost_class()
        if scope is None or depth != scope.body_depth:
            return
        cls = scope.cls
        fn_decl = SAVE_FN_RE.search(stmt)
        if fn_decl:
            cls.declares.add(fn_decl.group(1))
            return
        stmt = re.sub(r"\b(?:public|private|protected)\s*:", " ", stmt)
        stmt = MACRO_RE.sub(" ", stmt).strip()
        first = re.match(r"[A-Za-z_]\w*", stmt)
        if first and first.group(0) in STMT_SKIP_WORDS:
            return
        match = MEMBER_NAME_RE.search(stmt)
        if match and "(" not in stmt[match.start():]:
            cls.members.append((match.group(1), stmt_start if stmt_start else lineno))

    for lineno0, (code, _) in enumerate(rows):
        lineno = lineno0 + 1
        if capture is not None:
            capture[0].body_lines.add(lineno)
        for ch in code:
            if awaiting_semi:
                if ch.isspace():
                    continue
                if ch != ";":
                    pending = ""
                    stmt_start = None
                awaiting_semi = False
            if ch == "{":
                cls_scope = innermost_class()
                head = CLASS_HEAD_RE.search(MACRO_RE.sub(" ", pending))
                wordy = re.match(r"\s*(class|struct)\b", pending.strip())
                if head and wordy:
                    info = ClassInfo(head.group(1), display_path)
                    classes.append(info)
                    scopes.append(Scope("class", depth + 1, cls=info,
                                        saved_pending=pending))
                else:
                    if (cls_scope is not None and depth == cls_scope.body_depth
                            and SAVE_FN_RE.search(pending)):
                        cls_scope.cls.declares.add(SAVE_FN_RE.search(pending).group(1))
                        cls_scope.cls.body_lines.add(lineno)
                        capture = (cls_scope.cls, len(scopes))
                    scopes.append(Scope("other", depth + 1, saved_pending=pending))
                depth += 1
                pending = ""
                stmt_start = None
            elif ch == "}":
                depth -= 1
                if scopes and scopes[-1].body_depth == depth + 1:
                    closing = scopes.pop()
                    if capture is not None and len(scopes) == capture[1]:
                        capture = None
                    pending = closing.saved_pending + "{}"
                    stmt_start = stmt_start  # keep: restored statement's start
                    awaiting_semi = True
            elif ch == ";":
                finalize(pending, lineno)
                pending = ""
                stmt_start = None
            else:
                if pending.strip() == "" and not ch.isspace():
                    stmt_start = lineno
                pending += ch
                # `private:` &c. ends a statement without a `;`. Resetting here
                # keeps stmt_start on the member's own line, so a marker on the
                # comment lines above the first member after an access
                # specifier is found (it is searched upward from stmt_start).
                if ch == ":" and ACCESS_RE.fullmatch(pending):
                    pending = ""
                    stmt_start = None
                continue
        else:
            if pending.strip():
                pending += " "
    return classes, rows, raw_lines


def find_exemption(member_line, rows):
    """Exempt marker trailing the declaration line or on the comment-only
    lines immediately above it. Returns (marked, reason)."""
    code, comment = rows[member_line - 1]
    match = EXEMPT_RE.search(comment)
    if match:
        return True, match.group(1).strip()
    i = member_line - 2
    block = []
    while i >= 0:
        code, comment = rows[i]
        if code.strip() == "" and comment.strip():
            block.append(comment)
            i -= 1
            continue
        break
    for comment in block:
        match = EXEMPT_RE.search(comment)
        if match:
            return True, match.group(1).strip()
    return False, None


def extract_cc_bodies(path):
    """(class, fn) -> body text, for Class::SaveState/RestoreState defs."""
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    rows = split_lines(text)
    bodies = {}
    current = None  # (key, open_depth)
    depth = 0
    for code, _ in rows:
        if current is None:
            match = CC_DEF_RE.search(code)
            if match:
                current = ((match.group(1), match.group(2)), depth)
        if current is not None:
            key = current[0]
            bodies[key] = bodies.get(key, "") + code + "\n"
        depth += code.count("{") - code.count("}")
        if current is not None and depth == current[1] and "}" in code:
            current = None
    return bodies


class Finding:
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def collect_files(root, paths):
    headers, sources = [], []
    for path in paths:
        full = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(full):
            bucket = headers if full.endswith(HEADER_SUFFIXES) else sources
            bucket.append((full, os.path.relpath(full, root)))
        elif os.path.isdir(full):
            for dirpath, _, names in os.walk(full):
                for name in sorted(names):
                    f = os.path.join(dirpath, name)
                    rel = os.path.relpath(f, root)
                    if name.endswith(HEADER_SUFFIXES):
                        headers.append((f, rel))
                    elif name.endswith(SOURCE_SUFFIXES):
                        sources.append((f, rel))
        else:
            print(f"error: no such path: {full}", file=sys.stderr)
            sys.exit(2)
    headers.sort(key=lambda pair: pair[1])
    sources.sort(key=lambda pair: pair[1])
    return headers, sources


def lint_textual(root, paths):
    headers, sources = collect_files(root, paths)
    cc_bodies = {}
    for full, _ in sources:
        cc_bodies.update(extract_cc_bodies(full))

    findings = []
    classes_checked = 0
    for full, rel in headers:
        classes, rows, raw_lines = parse_header(full, rel)
        for cls in classes:
            if not cls.declares:
                continue
            if cls.declares != {"SaveState", "RestoreState"}:
                missing_fn = ({"SaveState", "RestoreState"} - cls.declares).pop()
                findings.append(Finding(
                    rel, cls.members[0][1] if cls.members else 1, "snapshot-unpaired",
                    f"class {cls.name} declares "
                    f"{next(iter(cls.declares))} but not {missing_fn}"))
                continue
            classes_checked += 1
            corpus = "".join(
                raw_lines[i - 1] + "\n" for i in sorted(cls.body_lines))
            corpus += cc_bodies.get((cls.name, "SaveState"), "")
            corpus += cc_bodies.get((cls.name, "RestoreState"), "")
            if not corpus.strip():
                findings.append(Finding(
                    rel, 1, "snapshot-no-body",
                    f"class {cls.name} declares SaveState/RestoreState but no "
                    "body was found in the scanned files"))
                continue
            # The class's own name appears in Class::Fn signature lines and
            # must count as neither section handling nor CRC evidence.
            body_text = corpus.replace(cls.name, " ")
            if SECTION_RE.search(body_text) and not CRC_OK_RE.search(body_text):
                findings.append(Finding(
                    rel, min(cls.body_lines) if cls.body_lines else 1,
                    "snapshot-crc",
                    f"{cls.name}'s SaveState/RestoreState walks snapshot "
                    "sections without validating checksums: route the "
                    "payload through SnapshotReader (Open verifies every "
                    "section CRC) or check Crc32 explicitly"))
            for name, lineno in cls.members:
                marked, reason = find_exemption(lineno, rows)
                if marked:
                    if not reason:
                        findings.append(Finding(
                            rel, lineno, "snapshot-exempt-reason",
                            f"{cls.name}::{name} snapshot-exempt marker needs a "
                            "reason: snapshot-exempt(<why this member is not "
                            "part of the checkpoint>)"))
                    continue
                if not re.search(rf"\b{re.escape(name)}\b", corpus):
                    findings.append(Finding(
                        rel, lineno, "snapshot-missing",
                        f"{cls.name}::{name} is neither captured in "
                        "SaveState/RestoreState nor marked "
                        "snapshot-exempt(<reason>); a rollback would not "
                        "restore it"))
    return findings, len(headers) + len(sources), classes_checked


def lint_libclang(root, paths):
    """Exact-AST engine; returns None when the bindings are unavailable so
    the caller falls back to the textual scanner."""
    try:
        import clang.cindex  # noqa: F401
    except Exception:
        return None
    # The container and CI image ship no libclang; the textual scanner is the
    # engine of record. If bindings appear, prefer exactness — but any parse
    # failure still falls back rather than passing vacuously.
    try:
        index = clang.cindex.Index.create()
    except Exception:
        return None
    del index  # parsing every TU needs compile flags; defer to textual scan
    return None


def run_lint(root, paths):
    result = lint_libclang(root, paths)
    if result is None:
        findings, file_count, classes_checked = lint_textual(root, paths)
    else:
        findings, file_count, classes_checked = result
    for finding in findings:
        print(finding)
    print(
        f"snapshot-lint: {file_count} files, {classes_checked} snapshot classes, "
        f"{len(findings)} finding{'' if len(findings) == 1 else 's'}"
    )
    return 1 if findings else 0


SELF_TEST_BAD_H = """\
#include <cstdint>
#include <vector>

namespace demo {

class Gadget {
 public:
  struct SavedState {
    std::uint64_t ticks;
    std::vector<int> items;
  };
  void SaveState(SavedState* out) const;
  void RestoreState(const SavedState& saved);

 private:
  std::uint64_t ticks_ = 0;
  std::vector<int> items_;
  std::uint64_t forgotten_counter_ = 0;   // planted: never saved
  // snapshot-exempt()
  int no_reason_scratch_ = 0;             // planted: marker without a reason
};

class OnlySave {
 public:
  void SaveState(int* out) const { *out = value_; }

 private:
  int value_ = 0;                          // planted: unpaired snapshot API
};

class CrcSkipper {
 public:
  void SaveState(std::vector<unsigned char>* image) const;
  void RestoreState(const std::vector<unsigned char>& image);

 private:
  std::uint64_t value_ = 0;
};

}  // namespace demo
"""

SELF_TEST_BAD_CC = """\
#include "bad.h"

namespace demo {

void Gadget::SaveState(SavedState* out) const {
  out->ticks = ticks_;
  out->items = items_;
}

void Gadget::RestoreState(const SavedState& saved) {
  ticks_ = saved.ticks;
  items_ = saved.items;
}

void CrcSkipper::SaveState(std::vector<unsigned char>* image) const {
  AppendSection(image, value_);
}

void CrcSkipper::RestoreState(const std::vector<unsigned char>& image) {
  // planted: hand-rolled section walk that decodes the payload without ever
  // verifying the recorded checksum
  value_ = DecodeSection(image, FindSection(image, 1));
}

}  // namespace demo
"""

SELF_TEST_CLEAN_H = """\
#include <cstdint>

namespace demo {

// Inline bodies and every flavor of legitimate non-member statement.
class Widget {
 public:
  using SavedState = std::uint64_t;
  void SaveState(SavedState* out) const { *out = odometer_; }
  void RestoreState(const SavedState& saved) { odometer_ = saved; }
  int reads() const { return reads_helper(); }

 private:
  static constexpr int kLimit_ = 4;  // static: not instance state
  int reads_helper() const;
  std::uint64_t odometer_ = 0;
  // snapshot-exempt(derived cache; rebuilt lazily on first use after restore)
  std::uint64_t cached_square_ = 0;
  // A plain comment line between members must not break marker association.
  // snapshot-exempt(observer wiring; the owner re-attaches after restore)
  void* observer_ = nullptr;
};

class NoSnapshot {
 private:
  int not_checked_ = 0;  // class has no SaveState/RestoreState: out of scope
};

// Walks its own container sections but validates — must NOT trip
// snapshot-crc. Also pins the access-specifier fix: the exempt marker on the
// first member right after `private:` must still be found.
class CheckedContainer {
 public:
  void SaveState(std::vector<unsigned char>* image) const {
    AppendSection(image, odometer_, Crc32Of(odometer_));
  }
  void RestoreState(const std::vector<unsigned char>& image) {
    odometer_ = ReadSectionVerifyingCrc(image, 1);
  }

 private:
  // snapshot-exempt(scratch decode buffer; cleared before every parse)
  std::vector<unsigned char> scratch_;
  std::uint64_t odometer_ = 0;
};

}  // namespace demo
"""


def self_test():
    expected = {
        "snapshot-missing": "forgotten_counter_",
        "snapshot-exempt-reason": "no_reason_scratch_",
        "snapshot-unpaired": "OnlySave",
        "snapshot-crc": "CrcSkipper",
    }
    with tempfile.TemporaryDirectory(prefix="snapshot_lint_") as tmp:
        with open(os.path.join(tmp, "bad.h"), "w", encoding="utf-8") as f:
            f.write(SELF_TEST_BAD_H)
        with open(os.path.join(tmp, "bad.cc"), "w", encoding="utf-8") as f:
            f.write(SELF_TEST_BAD_CC)
        with open(os.path.join(tmp, "clean.h"), "w", encoding="utf-8") as f:
            f.write(SELF_TEST_CLEAN_H)

        findings, _, _ = lint_textual(tmp, ["bad.h", "bad.cc"])
        clean_findings, _, checked = lint_textual(tmp, ["clean.h"])

        ok = True
        got = {f.rule: f.message for f in findings}
        for rule, needle in expected.items():
            if rule not in got:
                print(f"self-test FAIL: planted violation not caught: {rule}")
                ok = False
            elif needle not in got[rule]:
                print(f"self-test FAIL: {rule} fired but does not name "
                      f"{needle}: {got[rule]}")
                ok = False
        extra = {f.rule for f in findings} - set(expected)
        if extra:
            print(f"self-test FAIL: unexpected rules on the bad fixture: {sorted(extra)}")
            ok = False
        saved_members_flagged = [f for f in findings
                                 if "ticks_" in f.message or "items_" in f.message]
        if saved_members_flagged:
            print("self-test FAIL: members captured in the .cc bodies were flagged:")
            for f in saved_members_flagged:
                print(f"  {f}")
            ok = False
        if clean_findings:
            print("self-test FAIL: false positives on the clean fixture:")
            for f in clean_findings:
                print(f"  {f}")
            ok = False
        if checked != 2:
            print(f"self-test FAIL: expected 2 snapshot classes in clean.h, saw {checked}")
            ok = False
        if ok:
            print(
                f"self-test OK: caught {sorted(expected)} on the planted fixtures, "
                "cc-split bodies credited, exemptions honored, no false positives"
            )
        return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help=f"files/dirs to lint (default: {DEFAULT_DIRS})")
    parser.add_argument("--root", default=None, help="repo root (default: two dirs up)")
    parser.add_argument("--self-test", action="store_true",
                        help="plant an unsaved member &c. in fixtures and verify the rules fire")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths or list(DEFAULT_DIRS)
    sys.exit(run_lint(root, paths))


if __name__ == "__main__":
    main()
