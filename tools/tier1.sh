#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): configure, build and run the full test
# suite. This is the gate every change must pass.
#
# Usage: tools/tier1.sh [build-dir]
#
# Environment:
#   MRMSIM_SANITIZE=1   add -fsanitize=address,undefined to the build
#   MRMSIM_ALLOC_TEST=1 also build + run the operator-new counting test
#   MRMSIM_CHECKED=1    compile the protocol-auditor hook sites in
#                       (-DMRMSIM_CHECKED=ON); benches then honor MRMSIM_CHECK
#   MRMSIM_WERROR=1     promote warnings to errors (-DMRMSIM_WERROR=ON)
#   MRMSIM_BENCH=0      skip the tracked benchmark JSONs (default: emit them,
#                       unless the build is sanitized)
#   CMAKE_BUILD_TYPE    build type (default RelWithDebInfo)
#
# After the tests pass, the tracked perf benches run with a 1-thread bench
# pool and a 4-thread sim worker pool and refresh BENCH_micro_simulator
# .json, BENCH_e12_bandwidth.json, BENCH_e12_closed_loop.json,
# BENCH_f2_fault_sweep.json and BENCH_e14_policy_tune.json at the repo root; committing them records the
# perf/RAS/validation trajectory between PRs. MRMSIM_SPEC_HORIZON is pinned
# to 0 so the spec-off points are genuinely conservative; the speculation
# story lives in each bench's dedicated *_spec / *_spec_on points, which
# dial in their own default window when the knob is 0.
# Sanitized builds skip this — their wall times measure the sanitizer, not
# the code.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}")
if [[ "${MRMSIM_SANITIZE:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all")
fi
if [[ "${MRMSIM_ALLOC_TEST:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DMRMSIM_ALLOC_TEST=ON)
fi
if [[ "${MRMSIM_CHECKED:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DMRMSIM_CHECKED=ON)
fi
if [[ "${MRMSIM_WERROR:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DMRMSIM_WERROR=ON)
fi

# Static analysis layer (DESIGN.md §12). The lints also run as ctest
# entries; running them first gives the fastest failure. Their verdict plus
# the tree's git SHA are exported so the tracked bench JSONs carry a
# lint_clean provenance stamp — a recorded perf point says which tree it
# measured and that the tree was statically clean (benches launched outside
# this script stamp "unknown").
LINT_CLEAN=pass
if command -v python3 > /dev/null 2>&1; then
  python3 tools/lint/determinism_lint.py
  python3 tools/lint/snapshot_lint.py
else
  LINT_CLEAN=unknown
fi
tools/check/thread_safety_negative.sh || [[ $? -eq 77 ]]
export MRMSIM_LINT_CLEAN="$LINT_CLEAN"
MRMSIM_GIT_SHA="$(git rev-parse --short HEAD 2> /dev/null || echo unknown)"
if [[ "$MRMSIM_GIT_SHA" != unknown ]] && ! git diff --quiet HEAD 2> /dev/null; then
  MRMSIM_GIT_SHA="$MRMSIM_GIT_SHA-dirty"
fi
export MRMSIM_GIT_SHA

cmake -S . -B "$BUILD_DIR" "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "${MRMSIM_BENCH:-1}" == "1" && "${MRMSIM_SANITIZE:-0}" != "1" ]]; then
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_micro_simulator bench_e12_bandwidth bench_e12_closed_loop \
    bench_f2_fault_sweep bench_e14_policy_tune
  for bench in bench_micro_simulator bench_e12_bandwidth bench_e12_closed_loop \
               bench_f2_fault_sweep bench_e14_policy_tune; do
    MRMSIM_BENCH_THREADS=1 MRMSIM_SIM_THREADS=4 MRMSIM_SPEC_HORIZON=0 \
      MRMSIM_BENCH_OUT="$PWD" "./$BUILD_DIR/bench/$bench"
  done
fi
