#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): configure, build and run the full test
# suite. This is the gate every change must pass.
#
# Usage: tools/tier1.sh [build-dir]
#
# Environment:
#   MRMSIM_SANITIZE=1   add -fsanitize=address,undefined to the build
#   MRMSIM_ALLOC_TEST=1 also build + run the operator-new counting test
#   CMAKE_BUILD_TYPE    build type (default RelWithDebInfo)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-RelWithDebInfo}")
if [[ "${MRMSIM_SANITIZE:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all")
fi
if [[ "${MRMSIM_ALLOC_TEST:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DMRMSIM_ALLOC_TEST=ON)
fi

cmake -S . -B "$BUILD_DIR" "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
